// Coverage weaving: the per-block edge snippet must light the guest-side
// map deterministically — same input, same map, with or without the JIT —
// and the `new_edges` counter must gate exactly on previously-zero slots.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "fuzz/fuzz.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;

fuzz::WovenTarget weave_target(const std::string& magic = "AB") {
  return fuzz::weave_coverage(
      assembler::assemble(workloads::fuzz_target_program(magic)));
}

void write_input(Machine& m, const std::vector<std::uint8_t>& in,
                 const fuzz::WovenTarget& t) {
  const symtab::Symbol* buf = t.binary.find_symbol("fuzz_input");
  const symtab::Symbol* len = t.binary.find_symbol("fuzz_len");
  ASSERT_NE(buf, nullptr);
  ASSERT_NE(len, nullptr);
  if (!in.empty()) m.memory().write_bytes(buf->value, in.data(), in.size());
  m.memory().write(len->value, in.size(), 8);
}

TEST(FuzzCoverage, WeaveCoversEveryBlockWithoutTraps) {
  const auto t = weave_target();
  EXPECT_GT(t.blocks_woven, 5u);
  EXPECT_EQ(t.trap_entries, 0u);  // campaign precondition
}

TEST(FuzzCoverage, RunLightsMapAndCountsNewEdges) {
  const auto t = weave_target();
  Machine m;
  fuzz::attach_coverage(m, t);
  write_input(m, {'x', 'y'}, t);
  ASSERT_EQ(m.run(), StopReason::Exited);

  std::vector<std::uint8_t> map(fuzz::kMapSize);
  fuzz::read_map(m, map.data());
  unsigned lit = 0;
  for (const std::uint8_t b : map) lit += b != 0;
  EXPECT_GT(lit, 5u);  // one slot per executed edge (modulo collisions)
  const std::uint64_t new_edges = m.memory().read(fuzz::kNewEdgesAddr, 8);
  EXPECT_EQ(new_edges, lit);  // every slot was zero before this run
}

// Re-running the same input on a persistent map must find nothing new:
// novelty gating relies on this.
TEST(FuzzCoverage, SecondRunOfSameInputIsNotNovel) {
  const auto t = weave_target();
  Machine m;
  fuzz::attach_coverage(m, t);
  const auto snap = m.take_snapshot();

  for (int round = 0; round < 3; ++round) {
    m.memory().write(fuzz::kPrevAddr, 0, 8);
    m.memory().write(fuzz::kNewEdgesAddr, 0, 8);
    write_input(m, {1, 2, 3}, t);
    ASSERT_EQ(m.run(), StopReason::Exited);
    const std::uint64_t new_edges = m.memory().read(fuzz::kNewEdgesAddr, 8);
    if (round == 0)
      EXPECT_GT(new_edges, 0u);
    else
      EXPECT_EQ(new_edges, 0u) << "round " << round;
    m.reset_to_snapshot(snap);
  }
}

// Same input on two fresh machines: byte-identical 64 KiB maps.
TEST(FuzzCoverage, MapIsDeterministicAcrossMachines) {
  const auto t = weave_target();
  std::vector<std::uint8_t> map_a(fuzz::kMapSize), map_b(fuzz::kMapSize);
  for (auto* map : {&map_a, &map_b}) {
    Machine m;
    fuzz::attach_coverage(m, t);
    write_input(m, {'A', 'q'}, t);
    ASSERT_EQ(m.run(), StopReason::Exited);
    fuzz::read_map(m, map->data());
  }
  EXPECT_EQ(std::memcmp(map_a.data(), map_b.data(), fuzz::kMapSize), 0);
}

// The map must not depend on the execution tier: N snapshot-reset
// iterations of one input accumulate the same counts interpreted and
// JIT-compiled (the woven snippets are themselves compiled once hot).
TEST(FuzzCoverage, MapIsIdenticalWithAndWithoutJit) {
  const auto t = weave_target();
  constexpr int kRounds = 40;  // far past the JIT hot threshold

  std::vector<std::uint8_t> maps[2];
  for (const bool jit_on : {false, true}) {
    Machine m;
    m.set_jit_enabled(jit_on);
    fuzz::attach_coverage(m, t);
    const auto snap = m.take_snapshot();
    for (int i = 0; i < kRounds; ++i) {
      m.memory().write(fuzz::kPrevAddr, 0, 8);
      write_input(m, {'A', 'B', 'z'}, t);
      ASSERT_EQ(m.run(), StopReason::Breakpoint);  // full magic match
      m.reset_to_snapshot(snap);
    }
#if RVDYN_JIT_ENABLED
    if (jit_on)
      EXPECT_GT(m.jit_stats().blocks_entered, 0u)
          << "JIT never engaged; comparison lost its point";
#endif
    maps[jit_on ? 1 : 0].resize(fuzz::kMapSize);
    fuzz::read_map(m, maps[jit_on ? 1 : 0].data());
  }
  EXPECT_EQ(std::memcmp(maps[0].data(), maps[1].data(), fuzz::kMapSize), 0);
}

// Regression for a relocation bug the fuzzer exposed: the RVC
// re-compression pass shrank instructions inside woven snippets without
// rebuilding snippet-internal branch displacements (encoded against the
// 4-byte-per-insn layout the code generator assumes). The first-hit
// branch in the edge snippet then overshot the map-base materialization
// on every *repeat* hit of an edge, so hit counters froze at 1 and the
// counter stores landed at (prev ^ cur) in low guest memory — churning
// stray dirty pages through every snapshot reset. Counters must keep
// counting, and execution must dirty nothing outside the input page.
TEST(FuzzCoverage, EdgeCountersKeepCountingAcrossRepeats) {
  const auto t = weave_target();
  Machine m;
  fuzz::attach_coverage(m, t);
  const auto snap = m.take_snapshot();

  constexpr int kRounds = 3;
  for (int i = 0; i < kRounds; ++i) {
    m.memory().write(fuzz::kPrevAddr, 0, 8);
    write_input(m, {'q'}, t);
    ASSERT_EQ(m.run(), StopReason::Exited);
    // The exempt map absorbs every snippet store: only the input/len page
    // may be dirty, and nothing below the text base ever is.
    for (const std::uint64_t page : m.memory().dirty_pages())
      EXPECT_GE(page << emu::Memory::kPageBits, 0x10000u)
          << "snippet store escaped the coverage map (round " << i << ")";
    m.reset_to_snapshot(snap);
  }

  std::vector<std::uint8_t> map(fuzz::kMapSize);
  fuzz::read_map(m, map.data());
  std::uint8_t max_count = 0;
  for (const std::uint8_t b : map) max_count = std::max(max_count, b);
  EXPECT_GE(max_count, kRounds) << "edge hit counters are not accumulating";
}

// Distinct inputs taking distinct paths produce distinct maps (coverage
// actually discriminates behavior, the property scheduling relies on).
TEST(FuzzCoverage, DifferentPathsProduceDifferentMaps) {
  const auto t = weave_target();
  std::vector<std::uint8_t> short_map(fuzz::kMapSize),
      match_map(fuzz::kMapSize);

  Machine a;
  fuzz::attach_coverage(a, t);
  write_input(a, {}, t);  // len 0: skips the magic compares entirely
  ASSERT_EQ(a.run(), StopReason::Exited);
  fuzz::read_map(a, short_map.data());

  Machine b;
  fuzz::attach_coverage(b, t);
  write_input(b, {'A', 'B'}, t);  // full match: reaches the ebreak
  ASSERT_EQ(b.run(), StopReason::Breakpoint);
  fuzz::read_map(b, match_map.data());

  EXPECT_NE(std::memcmp(short_map.data(), match_map.data(), fuzz::kMapSize),
            0);
}

}  // namespace
