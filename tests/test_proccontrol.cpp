// ProcControlAPI tests: breakpoints, native and breakpoint-emulated
// single-stepping (paper §3.2.6), and dynamic instrumentation of a live
// process (attach-and-instrument, Figure 1).
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "codegen/snippet.hpp"
#include "patch/editor.hpp"
#include "proccontrol/process.hpp"

namespace {

using namespace rvdyn;
using proccontrol::Event;
using proccontrol::Process;

constexpr const char* kProgram = R"(
    .globl _start
    .globl work
_start:
    li s0, 0
    li s1, 5
loop:
    mv a0, s0
    call work
    addi s0, s0, 1
    blt s0, s1, loop
    mv a0, s2
    li a7, 93
    ecall
work:
    addi sp, sp, -16
    sd ra, 8(sp)
    add s2, s2, a0
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
)";
// s2 = 0+1+2+3+4 = 10

TEST(ProcControl, RunToExit) {
  auto st = assembler::assemble(kProgram);
  auto proc = Process::launch(st);
  const Event ev = proc->continue_run();
  EXPECT_EQ(static_cast<int>(ev.kind), static_cast<int>(Event::Kind::Exited));
  EXPECT_EQ(ev.exit_code, 10);
}

TEST(ProcControl, BreakpointHitCountAndResume) {
  auto st = assembler::assemble(kProgram);
  const auto* sym = st.find_symbol("work");
  ASSERT_NE(sym, nullptr);
  auto proc = Process::launch(st);
  proc->insert_breakpoint(sym->value);

  int hits = 0;
  while (true) {
    const Event ev = proc->continue_run();
    if (ev.kind == Event::Kind::Exited) {
      EXPECT_EQ(ev.exit_code, 10);
      break;
    }
    ASSERT_EQ(static_cast<int>(ev.kind),
              static_cast<int>(Event::Kind::Stopped));
    EXPECT_EQ(ev.addr, sym->value);
    // Inspect the argument register at each hit: a0 == iteration count.
    EXPECT_EQ(proc->get_reg(isa::a0), static_cast<std::uint64_t>(hits));
    ++hits;
  }
  EXPECT_EQ(hits, 5);
}

TEST(ProcControl, BreakpointOnCompressedInstruction) {
  auto st = assembler::assemble(kProgram);
  const auto* sym = st.find_symbol("work");
  // work's first insn is c.addi16sp (2 bytes): the trap must be c.ebreak
  // so the following instruction is not corrupted.
  auto proc = Process::launch(st);
  proc->insert_breakpoint(sym->value);
  const Event ev = proc->continue_run();
  ASSERT_EQ(static_cast<int>(ev.kind), static_cast<int>(Event::Kind::Stopped));
  proc->remove_breakpoint(sym->value);
  const Event done = proc->continue_run();
  EXPECT_EQ(static_cast<int>(done.kind), static_cast<int>(Event::Kind::Exited));
  EXPECT_EQ(done.exit_code, 10);
}

TEST(ProcControl, RegisterAndMemoryAccess) {
  auto st = assembler::assemble(kProgram);
  const auto* sym = st.find_symbol("work");
  auto proc = Process::launch(st);
  proc->insert_breakpoint(sym->value);
  proc->continue_run();
  // Debugger-style state tampering: force a0 = 100 for this call.
  proc->set_reg(isa::a0, 100);
  proc->remove_breakpoint(sym->value);
  const Event ev = proc->continue_run();
  EXPECT_EQ(static_cast<int>(ev.kind), static_cast<int>(Event::Kind::Exited));
  EXPECT_EQ(ev.exit_code, 100 + 1 + 2 + 3 + 4);
}

TEST(ProcControl, NativeSingleStepWalksInstructions) {
  auto st = assembler::assemble(kProgram);
  auto proc = Process::launch(st);
  const std::uint64_t start_pc = proc->pc();
  const Event e1 = proc->step_native();
  EXPECT_EQ(static_cast<int>(e1.kind), static_cast<int>(Event::Kind::Stepped));
  EXPECT_NE(proc->pc(), start_pc);
  EXPECT_EQ(proc->machine().instret(), 1u);
}

TEST(ProcControl, EmulatedStepMatchesNativeStep) {
  // Run two identical processes, one stepping natively and one with
  // breakpoint-emulated stepping: their pc traces must match exactly.
  auto st = assembler::assemble(kProgram);
  auto native = Process::launch(st);
  auto emulated = Process::launch(st);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(native->pc(), emulated->pc()) << "diverged at step " << i;
    const Event a = native->step_native();
    const Event b = emulated->step_emulated();
    if (a.kind == Event::Kind::Exited) {
      EXPECT_EQ(static_cast<int>(b.kind),
                static_cast<int>(Event::Kind::Exited));
      EXPECT_EQ(a.exit_code, b.exit_code);
      return;
    }
    ASSERT_EQ(static_cast<int>(a.kind),
              static_cast<int>(Event::Kind::Stepped));
    ASSERT_EQ(static_cast<int>(b.kind),
              static_cast<int>(Event::Kind::Stepped));
  }
}

TEST(ProcControl, EmulatedStepCostsMoreInstructionsOfWork) {
  // The paper's observation: software-emulated stepping is slower. Here
  // the cost shows up as breakpoint bookkeeping; both must still agree on
  // the architectural state.
  auto st = assembler::assemble(kProgram);
  auto proc = Process::launch(st);
  for (int i = 0; i < 50; ++i) {
    const Event ev = proc->step_emulated();
    if (ev.kind == Event::Kind::Exited) break;
    ASSERT_EQ(static_cast<int>(ev.kind),
              static_cast<int>(Event::Kind::Stepped));
  }
  SUCCEED();
}

TEST(ProcControl, DynamicInstrumentationOfRunningProcess) {
  auto st = assembler::assemble(kProgram);
  auto proc = Process::launch(st);

  // Let the process run into the loop (2 calls done), then attach-style
  // instrument the remaining execution.
  const auto* work = st.find_symbol("work");
  ASSERT_NE(work, nullptr);
  proc->insert_breakpoint(work->value);
  proc->continue_run();
  proc->continue_run();  // two hits: two calls under way
  proc->remove_breakpoint(work->value);

  patch::BinaryEditor editor(st);
  const auto counter = editor.alloc_var("live_calls");
  editor.insert_at(editor.code().function_named("work")->entry(),
                   patch::PointType::FuncEntry, codegen::increment(counter));
  editor.commit();
  proc->apply_patch(editor);

  const Event ev = proc->continue_run();
  EXPECT_EQ(static_cast<int>(ev.kind), static_cast<int>(Event::Kind::Exited));
  EXPECT_EQ(ev.exit_code, 10);  // behaviour preserved
  // The process was stopped *at* work's entry for call #2 when the
  // springboard was installed, so calls 2..5 are counted: 4 of 5.
  EXPECT_EQ(proc->read_mem(counter.addr, 8), 4u);
}

TEST(ProcControl, CrashReported) {
  const char* src = R"(
    .globl _start
_start:
    li t0, 0x99999000
    jr t0
)";
  auto st = assembler::assemble(src);
  auto proc = Process::launch(st);
  const Event ev = proc->continue_run();
  EXPECT_EQ(static_cast<int>(ev.kind), static_cast<int>(Event::Kind::Crashed));
}

TEST(ProcControl, LimitReached) {
  const char* src = R"(
    .globl _start
_start:
spin:
    j spin
)";
  auto st = assembler::assemble(src);
  auto proc = Process::launch(st);
  const Event ev = proc->continue_run(1000);
  EXPECT_EQ(static_cast<int>(ev.kind),
            static_cast<int>(Event::Kind::LimitReached));
}

}  // namespace
