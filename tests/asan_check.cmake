# Builds the tree once with -DRVDYN_SANITIZE=address and runs the patching
# and process-control suites under AddressSanitizer — the layers that took
# the relocation-engine rewrite (widget IR, pass pipeline, AddressSpace
# backends) and that juggle raw byte buffers and springboard writes. Run via
#   cmake -P tests/asan_check.cmake
# (registered as the `asan_patch_suite` ctest from non-sanitized builds).
#
# Variables (all optional, -D before -P):
#   SOURCE_DIR  repo root (default: parent of this script)
#   BINARY_DIR  nested build dir (default: ${SOURCE_DIR}/build-asan)
#   JOBS        parallel build jobs (default: 4)

if(NOT SOURCE_DIR)
  get_filename_component(SOURCE_DIR ${CMAKE_CURRENT_LIST_DIR} DIRECTORY)
endif()
if(NOT BINARY_DIR)
  set(BINARY_DIR ${SOURCE_DIR}/build-asan)
endif()
if(NOT JOBS)
  set(JOBS 4)
endif()

message(STATUS "asan check: configuring ${BINARY_DIR} with -DRVDYN_SANITIZE=address")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DRVDYN_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan check: configure failed")
endif()

# The relocation engine and both AddressSpace backends, end to end: widget
# lowering/relaxation/emission, springboard installs and reverts, the trap
# runtime, and the dynamic-instrumentation path through ProcessSpace.
set(targets
  test_patch
  test_patch_advanced
  test_patch_reloc
  test_proccontrol
  test_extensions_e2e)

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} -j ${JOBS} --target ${targets}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan check: build failed with RVDYN_SANITIZE=address")
endif()

foreach(t ${targets})
  message(STATUS "asan check: running ${t}")
  execute_process(
    COMMAND ${BINARY_DIR}/tests/${t}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "asan check: ${t} failed under AddressSanitizer")
  endif()
endforeach()

message(STATUS "asan check: patch/proccontrol suites clean under ASan")
