// Lockstep oracle acceptance: every mnemonic with a precise semantics spec
// runs >= 10k randomized states against the single-stepped emulator with
// zero divergences — coverage is asserted per mnemonic, not sampled — and
// the harness proves it can catch a seeded wrong spec (meta-test).
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "semantics/pipeline.hpp"

namespace {

using namespace rvdyn;

std::string divergence_dump(const std::vector<check::Divergence>& divs) {
  std::string out;
  for (const auto& d : divs) {
    out += "[" + d.subject + " seed=" + std::to_string(d.seed) + "] " +
           d.detail + "\n";
  }
  return out;
}

TEST(Lockstep, FullPreciseSpecCoverageNoDivergence) {
  check::LockstepOptions opts;  // defaults: 10k states/mnemonic + RVC sweep
  const check::LockstepReport rep = check::run_lockstep(opts);

  EXPECT_EQ(rep.divergence_count, 0u) << divergence_dump(rep.divergences);
  EXPECT_TRUE(rep.uncovered.empty());

  // 100% coverage, asserted mnemonic by mnemonic.
  const auto all = check::lockstep_mnemonics();
  ASSERT_GT(all.size(), 80u);  // the precise-spec table spans I/M/Zicond/Zba/Zbb
  for (const isa::Mnemonic m : all) {
    const auto it = rep.per_mnemonic.find(m);
    ASSERT_NE(it, rep.per_mnemonic.end()) << isa::mnemonic_name(m);
    EXPECT_GE(it->second, opts.states_per_mnemonic) << isa::mnemonic_name(m);
  }

  // The compressed space rode along: every valid RVC form whose expansion
  // has a precise spec was exercised.
  EXPECT_GT(rep.rvc_forms, 9000u);
  EXPECT_GT(rep.encodings, 10000u);
}

TEST(Lockstep, ReproductionModeRestrictsToOneMnemonic) {
  check::LockstepOptions opts;
  opts.only = isa::Mnemonic::addi;
  opts.states_per_mnemonic = 200;
  opts.states_per_encoding = 5;
  opts.rvc_exhaustive = false;
  const check::LockstepReport rep = check::run_lockstep(opts);
  EXPECT_EQ(rep.divergence_count, 0u) << divergence_dump(rep.divergences);
  ASSERT_EQ(rep.per_mnemonic.size(), 1u);
  EXPECT_EQ(rep.per_mnemonic.begin()->first, isa::Mnemonic::addi);
}

// Meta-test: the oracle must catch a wrong spec. Seed an off-by-one addi
// model through the override hook and require divergences.
TEST(Lockstep, SeededWrongSpecIsCaught) {
  semantics::install_spec_overrides(
      {{isa::Mnemonic::addi, "rd = rs1 + imm + 1"}});
  check::LockstepOptions opts;
  opts.only = isa::Mnemonic::addi;
  opts.states_per_mnemonic = 200;
  opts.states_per_encoding = 5;
  opts.rvc_exhaustive = false;
  const check::LockstepReport rep = check::run_lockstep(opts);
  semantics::clear_spec_overrides();

  EXPECT_GT(rep.divergence_count, 0u);
  ASSERT_FALSE(rep.divergences.empty());
  const check::Divergence& d = rep.divergences.front();
  EXPECT_EQ(d.oracle, "lockstep");
  EXPECT_EQ(d.subject, "addi");
  EXPECT_NE(d.encoding, 0u);   // carries the failing word
  EXPECT_FALSE(d.detail.empty());
}

// Meta-test for the store side: a wrong store-value model must surface as
// a memory divergence, proving the oracle watches stores, not just rd.
TEST(Lockstep, SeededWrongStoreSpecIsCaught) {
  semantics::install_spec_overrides(
      {{isa::Mnemonic::sw, "mem[rs1 + imm]:4 = rs2 + 1"}});
  check::LockstepOptions opts;
  opts.only = isa::Mnemonic::sw;
  opts.states_per_mnemonic = 200;
  opts.states_per_encoding = 5;
  opts.rvc_exhaustive = false;
  const check::LockstepReport rep = check::run_lockstep(opts);
  semantics::clear_spec_overrides();
  EXPECT_GT(rep.divergence_count, 0u);
}

}  // namespace
