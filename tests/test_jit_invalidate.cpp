// JIT invalidation races: write_code into a currently-chained compiled
// block, guest fence.i mid-trace, and the PR-1 precise-eviction
// self-modifying-code scenarios replayed with the tier forced hot. The
// contract mirrors the interpreter's cache rules exactly: write_code and
// fence.i drop (and unchain) compiled blocks; plain guest stores do not.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;

#if RVDYN_JIT_ENABLED

using emu::jit::BackendKind;

const BackendKind kBackends[] = {BackendKind::X64, BackendKind::Threaded};

const char* bk_name(BackendKind b) {
  return b == BackendKind::X64 ? "x64" : "threaded";
}

void put32(Machine& m, std::uint64_t addr, std::uint32_t word) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(word >> (8 * i));
  m.write_code(addr, b, 4);
}

// Compile a two-block chained loop, then write_code into the *target* of a
// live chain edge. The tier must drop the patched block AND re-patch the
// surviving block's edge back to its side-exit stub — a stale chain would
// jump straight into freed or outdated code.
TEST(JitInvalidate, WriteCodeIntoChainedBlock) {
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 1;
    // Two blocks chained into a loop:
    //   A @ 0x1000: addi a1, a1, 1 ; j B          (jal edge A->B)
    //   B @ 0x1008: addi a0, a0, -1 ; bnez a0, A  (taken edge B->A)
    //   0x1010: ebreak
    put32(m, 0x1000, 0x00158593);
    put32(m, 0x1004, 0x0040006f);  // jal x0, +4 -> 0x1008
    put32(m, 0x1008, 0xfff50513);
    put32(m, 0x100c, 0xfe051ae3);  // bne a0, x0, -12 -> 0x1000
    put32(m, 0x1010, 0x00100073);
    m.set_pc(0x1000);
    m.set_x(10, 200);
    m.set_x(11, 0);
    // First leg: hot loop compiles and chains A->B->A.
    EXPECT_EQ(m.run(400), StopReason::Running) << bk_name(bk);
    const auto warm = m.jit_stats();
    EXPECT_GT(warm.blocks_compiled, 1u) << bk_name(bk);
    EXPECT_GT(warm.chains_installed, 0u) << bk_name(bk);
    // Patch A's first insn while B's compiled code is chained into A. The
    // tier must drop A and re-point B's live edge at its side-exit stub.
    put32(m, 0x1000, 0x00258593);  // addi a1, a1, 2
    const auto after = m.jit_stats();
    EXPECT_GT(after.evict_write_code, 0u) << bk_name(bk);
    EXPECT_GT(after.chains_broken, 0u) << bk_name(bk);
    // Second leg must see the new +2 on every remaining iteration.
    const std::uint64_t done_before = m.get_x(11);  // = iterations done
    EXPECT_EQ(m.run(100000), StopReason::Breakpoint) << bk_name(bk);
    EXPECT_EQ(m.get_x(11), done_before + 2 * (200 - done_before))
        << bk_name(bk);
    EXPECT_EQ(m.get_x(10), 0u) << bk_name(bk);
  }
}

// Guest fence.i mid-trace: self-modifying code patches an already-compiled
// probe, then fence.i. With the fence the new bytes execute; without it
// the stale compiled code keeps running — byte-identical to the
// interpreter's (deliberate) stale-cache behavior.
TEST(JitInvalidate, FenceIMidTraceDropsCompiledBlocks) {
  for (BackendKind bk : kBackends) {
    for (const bool with_fence : {false, true}) {
      Machine m;
      m.jit_config().backend = bk;
      m.jit_config().hot_threshold = 1;
      // probe: addi a0, a0, 1; ret
      put32(m, 0x1080, 0x00150513);
      put32(m, 0x1084, 0x00008067);
      // main loop, runs `reps` times so the probe is compiled long before
      // the patch lands:
      //   call probe
      //   sw t1, 0(t0)        (patch probe's first insn with addi a0,a0,2)
      //   [fence.i | nop]
      //   call probe
      //   addi a2, a2, -1
      //   bnez a2, main
      //   ebreak
      put32(m, 0x1000, 0x080000ef);  // jal ra, +0x80 -> 0x1080
      put32(m, 0x1004, 0x0062a023);  // sw t1, 0(t0)
      put32(m, 0x1008, with_fence ? 0x0000100f : 0x00000013);
      put32(m, 0x100c, 0x074000ef);  // jal ra, +0x74 -> 0x1080
      put32(m, 0x1010, 0xfff60613);  // addi a2, a2, -1
      put32(m, 0x1014, 0xfe0616e3);  // bne a2, x0, -20 -> 0x1000
      put32(m, 0x1018, 0x00100073);  // ebreak
      m.set_pc(0x1000);
      const int reps = 40;
      m.set_x(10, 0);
      m.set_x(12, reps);
      m.set_x(5, 0x1080);                       // t0 = probe
      m.set_x(6, 0x00250513);                   // t1 = addi a0, a0, 2
      EXPECT_EQ(m.run(1000000), StopReason::Breakpoint)
          << bk_name(bk) << " fence=" << with_fence;
      // First call of iteration 1 sees +1. With fence.i every subsequent
      // call sees +2 (1 + 2*(2*reps-1)); without it the stale +1 persists
      // for all 2*reps calls.
      const std::uint64_t want =
          with_fence ? 1 + 2 * (2 * reps - 1) : 2 * reps;
      EXPECT_EQ(m.get_x(10), want) << bk_name(bk) << " fence=" << with_fence;
      if (with_fence) {
        EXPECT_GT(m.jit_stats().evict_fencei, 0u) << bk_name(bk);
      }
      EXPECT_GT(m.jit_stats().insns_retired, 0u) << bk_name(bk);
    }
  }
}

// PR-1 precise-eviction regression, tier forced hot: the write_code /
// stale-decode scenarios from test_emu_cache must behave identically with
// compiled code in the picture.
TEST(JitInvalidate, WriteCodeEvictsCompiledBlocks) {
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 1;
    put32(m, 0x1000, 0x00150513);  // addi a0, a0, 1
    put32(m, 0x1004, 0x00150513);  // addi a0, a0, 1
    put32(m, 0x1008, 0x00100073);  // ebreak
    // Run the block enough times to compile it.
    for (int i = 0; i < 4; ++i) {
      m.set_pc(0x1000);
      m.set_x(10, 0);
      EXPECT_EQ(m.run(100), StopReason::Breakpoint) << bk_name(bk);
      EXPECT_EQ(m.get_x(10), 2u) << bk_name(bk);
    }
    EXPECT_GT(m.jit_stats().blocks_compiled, 0u) << bk_name(bk);
    // Patch the second instruction; rerunning must see the new bytes.
    put32(m, 0x1004, 0x00250513);  // addi a0, a0, 2
    m.set_pc(0x1000);
    m.set_x(10, 0);
    EXPECT_EQ(m.run(100), StopReason::Breakpoint) << bk_name(bk);
    EXPECT_EQ(m.get_x(10), 3u) << bk_name(bk);
    EXPECT_GT(m.jit_stats().evict_write_code, 0u) << bk_name(bk);
  }
}

// Plain guest stores over compiled code do NOT invalidate (matching the
// interpreter and real hardware): the stale compiled block keeps running
// until a fence.i.
TEST(JitInvalidate, PlainStoresDoNotInvalidate) {
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 1;
    // probe: addi a0, a0, 1; ret  — called in a loop; one iteration stores
    // over it with no fence.
    put32(m, 0x1040, 0x00150513);
    put32(m, 0x1044, 0x00008067);
    put32(m, 0x1000, 0x040000ef);  // jal ra, +0x40
    put32(m, 0x1004, 0x0062a023);  // sw t1, 0(t0)
    put32(m, 0x1008, 0xfff60613);  // addi a2, a2, -1
    put32(m, 0x100c, 0xfe061ae3);  // bne a2, x0, -12
    put32(m, 0x1010, 0x00100073);  // ebreak
    m.set_pc(0x1000);
    m.set_x(10, 0);
    m.set_x(12, 30);
    m.set_x(5, 0x1040);
    m.set_x(6, 0x00250513);  // would be addi a0, a0, 2 if decoded
    EXPECT_EQ(m.run(100000), StopReason::Breakpoint) << bk_name(bk);
    EXPECT_EQ(m.get_x(10), 30u) << bk_name(bk);  // +1 every time, never +2
    EXPECT_EQ(m.jit_stats().evict_write_code, 0u) << bk_name(bk);
    EXPECT_EQ(m.jit_stats().evict_fencei, 0u) << bk_name(bk);
  }
}

// Interleave patching with hot execution many times: every epoch bump must
// recompile from current bytes, never resurrect dropped code.
TEST(JitInvalidate, RepeatedPatchRecompileCycles) {
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 1;
    put32(m, 0x1008, 0x00100073);  // ebreak
    std::uint64_t want = 0;
    m.set_x(10, 0);
    for (std::uint32_t k = 1; k <= 20; ++k) {
      const std::uint32_t imm = k & 0x7ff;
      put32(m, 0x1000, 0x00050513 | (imm << 20));  // addi a0, a0, k
      put32(m, 0x1004, 0x00050513 | (imm << 20));  // addi a0, a0, k
      for (int rep = 0; rep < 3; ++rep) {
        m.set_pc(0x1000);
        EXPECT_EQ(m.run(100), StopReason::Breakpoint) << bk_name(bk);
        want += 2 * imm;
        ASSERT_EQ(m.get_x(10), want) << bk_name(bk) << " k=" << k;
      }
    }
    const auto s = m.jit_stats();
    EXPECT_GE(s.blocks_compiled, 20u) << bk_name(bk);
    EXPECT_GE(s.evict_write_code, 19u) << bk_name(bk);
  }
}

#else  // !RVDYN_JIT_ENABLED

TEST(JitInvalidate, CompiledOut) {
  Machine m;
  const auto bin = assembler::assemble(workloads::fib_program(10));
  m.load(bin);
  EXPECT_EQ(m.run(100'000'000), StopReason::Exited);
}

#endif  // RVDYN_JIT_ENABLED

}  // namespace
