// Emulator (hardware substrate) tests: architectural corner cases —
// division edge values, W-op sign extension, NaN boxing, FP conversion
// saturation, fclass, memory page-crossing, self-modifying code and the
// decode cache, syscall ABI, and the cycle model.
#include <gtest/gtest.h>

#include <cmath>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "isa/encoder.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;
using isa::Instruction;
using isa::Mnemonic;
using isa::Operand;

int run_exit(const std::string& src, Machine* mp = nullptr) {
  Machine local;
  Machine& m = mp ? *mp : local;
  m.load(assembler::assemble(src));
  EXPECT_EQ(static_cast<int>(m.run(50'000'000)),
            static_cast<int>(StopReason::Exited));
  return m.exit_code();
}

TEST(Emu, DivisionCornerCases) {
  // RISC-V architected results: x/0 = -1, x%0 = x, INT_MIN/-1 = INT_MIN.
  const char* src = R"(
    .globl _start
_start:
    li t0, 100
    li t1, 0
    div t2, t0, t1       # -1
    rem t3, t0, t1       # 100
    li t4, 1
    slli t4, t4, 63      # INT64_MIN
    li t5, -1
    div t6, t4, t5       # INT64_MIN (wraps)
    rem s0, t4, t5       # 0
    # checksum: (-1 & 15) + (100 & 15) + (t6>>60 & 15) + s0
    andi a0, t2, 15      # 15
    andi t3, t3, 15      # 4
    add a0, a0, t3       # 19
    srli t6, t6, 60      # 8
    add a0, a0, t6       # 27
    add a0, a0, s0       # 27
    li a7, 93
    ecall
)";
  EXPECT_EQ(run_exit(src), 27);
}

TEST(Emu, WordOpsSignExtend) {
  const char* src = R"(
    .globl _start
_start:
    li t0, 0x7fffffff
    addiw t1, t0, 1          # 0x80000000 -> sext -> negative
    sltz a0, t1              # 1 if negative
    li t2, 1
    slliw t3, t2, 31         # also negative
    sltz t4, t3
    add a0, a0, t4           # 2
    li t5, 0xffffffff
    srliw t6, t5, 4          # tr32 then shift: 0x0fffffff (positive)
    sgtz t6, t6
    add a0, a0, t6           # 3
    sraiw s0, t3, 31         # -1
    andi s0, s0, 7           # 7
    add a0, a0, s0           # 10
    li a7, 93
    ecall
)";
  EXPECT_EQ(run_exit(src), 10);
}

TEST(Emu, MulhVariants) {
  const char* src = R"(
    .globl _start
_start:
    li t0, -1
    li t1, -1
    mulhu t2, t0, t1     # (2^64-1)^2 >> 64 = 0xFFFF...FFFE
    andi a0, t2, 15      # 14
    mulh t3, t0, t1      # (-1 * -1) >> 64 = 0
    add a0, a0, t3       # 14
    li t4, 2
    mulhsu t5, t0, t4    # (-1 * 2) >> 64 (signed x unsigned) = -1
    andi t5, t5, 1       # 1
    add a0, a0, t5       # 15
    li a7, 93
    ecall
)";
  EXPECT_EQ(run_exit(src), 15);
}

TEST(Emu, NanBoxingOfSingles) {
  // flw boxes; reading an improperly boxed single yields NaN.
  const char* src = R"(
    .data
    .align 3
fval: .word 0x3f800000     # 1.0f
      .word 0
    .text
    .globl _start
_start:
    la t0, fval
    flw fa0, 0(t0)           # properly boxed 1.0f
    fadd.s fa1, fa0, fa0     # 2.0f
    fcvt.w.s a0, fa1         # 2
    # Break the boxing: move a raw integer pattern into the register
    # as a *double* bit pattern, then use it as a single.
    li t1, 0x3f800000        # upper bits zero: invalid box
    fmv.d.x fa2, t1
    fadd.s fa3, fa2, fa0     # NaN + 1.0f = NaN
    fclass.s t2, fa3
    li t3, 0x200             # quiet NaN class bit
    and t2, t2, t3
    snez t2, t2
    add a0, a0, t2           # 3
    li a7, 93
    ecall
)";
  EXPECT_EQ(run_exit(src), 3);
}

TEST(Emu, FcvtSaturation) {
  const char* src = R"(
    .data
    .align 3
big:  .dword 0x43F0000000000000   # 2^64 as double (overflows int64)
neg:  .dword 0xC3F0000000000000   # -2^64
    .text
    .globl _start
_start:
    la t0, big
    fld fa0, 0(t0)
    fcvt.l.d t1, fa0         # saturates to INT64_MAX
    li t2, -1
    srli t2, t2, 1           # INT64_MAX
    xor t3, t1, t2
    seqz a0, t3              # 1 if saturated correctly
    la t0, neg
    fld fa1, 0(t0)
    fcvt.lu.d t4, fa1        # negative -> 0 for unsigned
    seqz t4, t4
    add a0, a0, t4           # 2
    li a7, 93
    ecall
)";
  EXPECT_EQ(run_exit(src), 2);
}

TEST(Emu, FminFmaxFsgnj) {
  const char* src = R"(
    .data
    .align 3
vals: .dword 0x3ff0000000000000   # 1.0
      .dword 0xc000000000000000   # -2.0
    .text
    .globl _start
_start:
    la t0, vals
    fld fa0, 0(t0)
    fld fa1, 8(t0)
    fmin.d fa2, fa0, fa1     # -2.0
    fmax.d fa3, fa0, fa1     # 1.0
    fsgnjx.d fa4, fa3, fa1   # 1.0 with sign flipped by -2.0 -> -1.0
    fneg.d fa5, fa4          # 1.0
    fadd.d fa6, fa2, fa3     # -1.0
    fadd.d fa6, fa6, fa5     # 0.0
    fcvt.l.d t1, fa6
    seqz a0, t1
    li a7, 93
    ecall
)";
  EXPECT_EQ(run_exit(src), 1);
}

TEST(Emu, PageCrossingAccesses) {
  // An 8-byte store/load spanning a 4KiB page boundary.
  const char* src = R"(
    .globl _start
_start:
    li t0, 0x20ffc           # 4 bytes before a page boundary
    li t1, 0x1122334455667788
    sd t1, 0(t0)
    ld t2, 0(t0)
    xor t3, t1, t2
    seqz a0, t3
    lw t4, 0(t0)             # low half
    li t5, 0x55667788
    xor t4, t4, t5
    seqz t4, t4
    add a0, a0, t4           # 2
    li a7, 93
    ecall
)";
  EXPECT_EQ(run_exit(src), 2);
}

TEST(Emu, SelfModifyingCodeWithFence) {
  // The program patches an addi immediate in its own text, then executes
  // fence.i; the decode cache must observe the new bytes.
  const char* src = R"(
    .globl _start
_start:
    call victim              # first execution: a0 = 11
    mv s0, a0
    la t0, victim
    lw t1, 0(t0)             # addi a0, x0, 11
    li t2, 0x000fffff        # clear the I-immediate field (bits 31:20)
    and t1, t1, t2
    li t3, 22
    slli t3, t3, 20
    or t1, t1, t3            # addi a0, x0, 22
    sw t1, 0(t0)
    fence.i
    call victim              # second execution: a0 = 22
    add a0, a0, s0           # 33
    li a7, 93
    ecall
victim:
    .option norvc
    addi a0, x0, 11
    ret
)";
  EXPECT_EQ(run_exit(src), 33);
}

TEST(Emu, WriteSyscallToStderrAlsoCaptured) {
  const char* src = R"(
    .rodata
m1: .ascii "out"
m2: .ascii "err"
    .text
    .globl _start
_start:
    li a0, 1
    la a1, m1
    li a2, 3
    li a7, 64
    ecall
    li a0, 2
    la a1, m2
    li a2, 3
    li a7, 64
    ecall
    li a0, 0
    li a7, 93
    ecall
)";
  Machine m;
  EXPECT_EQ(run_exit(src, &m), 0);
  EXPECT_EQ(m.output(), "outerr");
}

TEST(Emu, BrkGrowsHeap) {
  const char* src = R"(
    .globl _start
_start:
    li a0, 0
    li a7, 214
    ecall                    # query current brk
    mv t0, a0
    li t1, 0x10000
    add a0, a0, t1
    li a7, 214
    ecall                    # grow by 64KiB
    sub t2, a0, t0
    li t3, 0x10000
    xor t2, t2, t3
    seqz a0, t2
    # Touch the new memory.
    li t4, 0xab
    sb t4, -1(t0)            # hmm: old brk edge... store inside new region
    add t5, t0, t1
    sb t4, -8(t5)
    lbu t6, -8(t5)
    xori t6, t6, 0xab
    seqz t6, t6
    add a0, a0, t6           # 2
    li a7, 93
    ecall
)";
  EXPECT_EQ(run_exit(src), 2);
}

TEST(Emu, BadSyscallStops) {
  const char* src = R"(
    .globl _start
_start:
    li a7, 9999
    ecall
)";
  Machine m;
  m.load(assembler::assemble(src));
  EXPECT_EQ(static_cast<int>(m.run(100)),
            static_cast<int>(StopReason::BadSyscall));
}

TEST(Emu, BadFetchReported) {
  const char* src = R"(
    .globl _start
_start:
    li t0, 0x99990000
    jr t0
)";
  Machine m;
  m.load(assembler::assemble(src));
  EXPECT_EQ(static_cast<int>(m.run(100)),
            static_cast<int>(StopReason::BadFetch));
  EXPECT_EQ(m.stop_pc(), 0x99990000u);
}

TEST(Emu, CycleModelChargesClasses) {
  Machine m;
  auto run_one = [&m](Mnemonic mn, std::initializer_list<Operand> ops) {
    const Instruction insn = isa::assemble(mn, ops);
    const std::uint32_t w = insn.raw();
    std::uint8_t bytes[8] = {static_cast<std::uint8_t>(w),
                             static_cast<std::uint8_t>(w >> 8),
                             static_cast<std::uint8_t>(w >> 16),
                             static_cast<std::uint8_t>(w >> 24),
                             0x73, 0x00, 0x10, 0x00};
    m.memory().map(0x10000, 16);
    m.memory().map(0x30000, 0x100);
    m.write_code(0x10000, bytes, sizeof(bytes));
    m.set_reg(isa::a1, 0x30000);
    m.set_pc(0x10000);
    const std::uint64_t before = m.cycles();
    EXPECT_EQ(static_cast<int>(m.step()),
              static_cast<int>(StopReason::Running));
    return m.cycles() - before;
  };
  const auto add_cost =
      run_one(Mnemonic::add, {Instruction::reg_op(isa::a0, Operand::kWrite),
                              Instruction::reg_op(isa::a1, Operand::kRead),
                              Instruction::reg_op(isa::a1, Operand::kRead)});
  const auto load_cost = run_one(
      Mnemonic::ld, {Instruction::reg_op(isa::a0, Operand::kWrite),
                     Instruction::mem_op(isa::a1, 0, 8, Operand::kRead)});
  const auto div_cost =
      run_one(Mnemonic::div, {Instruction::reg_op(isa::a0, Operand::kWrite),
                              Instruction::reg_op(isa::a1, Operand::kRead),
                              Instruction::reg_op(isa::a1, Operand::kRead)});
  EXPECT_LT(add_cost, load_cost);
  EXPECT_LT(load_cost, div_cost);
}

TEST(Emu, InstretCountsExactly) {
  const char* src = R"(
    .globl _start
_start:
    nop
    nop
    nop
    li a0, 0
    li a7, 93
    ecall
)";
  Machine m;
  EXPECT_EQ(run_exit(src, &m), 0);
  EXPECT_EQ(m.instret(), 6u);
}

TEST(Emu, TraceHookSeesEveryInstruction) {
  const char* src = R"(
    .globl _start
_start:
    li t0, 3
l:  addi t0, t0, -1
    bnez t0, l
    li a0, 0
    li a7, 93
    ecall
)";
  Machine m;
  std::vector<std::uint64_t> pcs;
  m.set_trace([&](std::uint64_t pc, const isa::Instruction&) {
    pcs.push_back(pc);
  });
  EXPECT_EQ(run_exit(src, &m), 0);
  EXPECT_EQ(pcs.size(), m.instret());
  // The loop body pc appears exactly 3 times.
  std::map<std::uint64_t, int> hist;
  for (auto pc : pcs) hist[pc]++;
  int max_count = 0;
  for (auto& [pc, n] : hist) max_count = std::max(max_count, n);
  EXPECT_EQ(max_count, 3);
}

TEST(Emu, StackInitializedAndWritable) {
  const char* src = R"(
    .globl _start
_start:
    addi sp, sp, -256
    li t0, 0x42
    sd t0, 0(sp)
    sd t0, 248(sp)
    ld t1, 0(sp)
    ld t2, 248(sp)
    add a0, t1, t2
    andi a0, a0, 255         # 0x84 = 132
    li a7, 93
    ecall
)";
  EXPECT_EQ(run_exit(src), 132);
}

}  // namespace
