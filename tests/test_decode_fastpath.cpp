// Differential tests for the table-driven decode fast path: the dispatch
// table (decode32) and the 64K RVC table (decode16) must be bit-identical
// to the reference implementations (decode32_linear / decode16_linear)
// under every profile, including restricted ones — the restricted-profile
// case is the regression guard for the old early-out bug where a matched
// but out-of-profile entry aborted the scan instead of continuing it.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "isa/decoder.hpp"

namespace {

using namespace rvdyn;
using isa::Decoder;
using isa::Extension;
using isa::ExtensionSet;
using isa::Instruction;

bool same_instruction(const Instruction& a, const Instruction& b) {
  if (a.mnemonic() != b.mnemonic()) return false;
  if (a.raw() != b.raw()) return false;
  if (a.length() != b.length()) return false;
  if (a.flags() != b.flags()) return false;
  if (a.extension() != b.extension()) return false;
  if (a.num_operands() != b.num_operands()) return false;
  for (unsigned i = 0; i < a.num_operands(); ++i) {
    const auto& x = a.operand(i);
    const auto& y = b.operand(i);
    if (x.kind != y.kind || x.access != y.access || x.size != y.size ||
        !(x.reg == y.reg) || x.imm != y.imm)
      return false;
  }
  return true;
}

// Profiles to sweep: full, the standard ones, and restricted subsets where
// the early-out bug would bite (a matched entry outside the profile must
// not mask overlapping in-profile entries).
std::vector<ExtensionSet> profiles() {
  ExtensionSet imc;
  imc.add(Extension::I).add(Extension::M).add(Extension::C);
  ExtensionSet ia_csr;
  ia_csr.add(Extension::I).add(Extension::A).add(Extension::Zicsr)
      .add(Extension::Zifencei);
  return {ExtensionSet(0xffff), ExtensionSet::rv64gc(),
          ExtensionSet::rv64g(), ExtensionSet::rv64i(), imc, ia_csr};
}

// >= 1M random words in total across profiles (6 x 200k), plus every
// opcode-table match value with randomized operand bits.
TEST(DecodeFastPath, TablePathMatchesReferenceScan32) {
  std::uint64_t checked = 0;
  for (const ExtensionSet profile : profiles()) {
    const Decoder dec(profile);
    std::mt19937_64 rng(0x5eed0000ULL + profile.mask());
    for (int i = 0; i < 200000; ++i) {
      const auto word = static_cast<std::uint32_t>(rng()) | 0x3;  // 32-bit space
      Instruction fast, ref;
      const bool okf = dec.decode32(word, &fast);
      const bool okr = dec.decode32_linear(word, &ref);
      ASSERT_EQ(okf, okr) << std::hex << "word=" << word
                          << " profile=" << profile.mask();
      if (okf)
        ASSERT_TRUE(same_instruction(fast, ref))
            << std::hex << "word=" << word << ": " << fast.to_string()
            << " vs " << ref.to_string();
      ++checked;
    }
  }
  EXPECT_GE(checked, 1'000'000u);
}

// Directed sweep: every table entry's match value with random bits layered
// into the unmasked (operand) positions, so every bucket and funct7 range
// is exercised, not just whatever the uniform fuzz happens to hit.
TEST(DecodeFastPath, EveryOpcodeEntryMatchesReference) {
  std::mt19937_64 rng(424242);
  for (const ExtensionSet profile : profiles()) {
    const Decoder dec(profile);
    for (std::uint16_t m = 0;
         m < static_cast<std::uint16_t>(isa::Mnemonic::kCount); ++m) {
      const isa::OpcodeInfo& info =
          isa::opcode_info(static_cast<isa::Mnemonic>(m));
      for (int rep = 0; rep < 16; ++rep) {
        const std::uint32_t word =
            info.match | (static_cast<std::uint32_t>(rng()) & ~info.mask);
        Instruction fast, ref;
        const bool okf = dec.decode32(word, &fast);
        const bool okr = dec.decode32_linear(word, &ref);
        ASSERT_EQ(okf, okr)
            << std::hex << "word=" << word << " profile=" << profile.mask();
        if (okf)
          ASSERT_TRUE(same_instruction(fast, ref)) << std::hex << word;
      }
    }
  }
}

// Exhaustive 16-bit sweep: the predecoded RVC table must agree with the
// quadrant decoder for all 65536 halfwords under every profile (including
// ones without C or without D, where gating differs per encoding).
TEST(DecodeFastPath, RvcTableMatchesQuadrantDecoder) {
  std::vector<ExtensionSet> ps = profiles();
  ps.push_back(ExtensionSet::rv64gc().remove(Extension::D));
  for (const ExtensionSet profile : ps) {
    const Decoder dec(profile);
    for (std::uint32_t h = 0; h < 65536; ++h) {
      const auto half = static_cast<std::uint16_t>(h);
      if ((half & 0x3) == 0x3) continue;  // 32-bit space
      Instruction fast, ref;
      const bool okf = dec.decode16(half, &fast);
      const bool okr = dec.decode16_linear(half, &ref);
      ASSERT_EQ(okf, okr) << std::hex << "half=" << half
                          << " profile=" << profile.mask();
      if (okf) {
        ASSERT_TRUE(same_instruction(fast, ref)) << std::hex << half;
        EXPECT_TRUE(fast.compressed());
      }
    }
  }
}

// Regression guard for the decode32 early-out bug: when entry A's encodings
// are a subset of entry B's (every word matching A also matches B) and the
// profile excludes A's extension but includes B's, the decoder must fall
// through to B instead of reporting the bytes invalid. The pair scan finds
// all such overlaps in the opcode table, so the guard keeps holding if a
// future extension introduces one.
TEST(DecodeFastPath, RestrictedProfileContinuesScan) {
  const auto kCount = static_cast<std::uint16_t>(isa::Mnemonic::kCount);
  std::mt19937_64 rng(1729);
  for (std::uint16_t ai = 0; ai < kCount; ++ai) {
    const isa::OpcodeInfo& a = isa::opcode_info(static_cast<isa::Mnemonic>(ai));
    for (std::uint16_t bi = 0; bi < kCount; ++bi) {
      if (ai == bi) continue;
      const isa::OpcodeInfo& b =
          isa::opcode_info(static_cast<isa::Mnemonic>(bi));
      const bool subsumed =
          (b.mask & ~a.mask) == 0 && (a.match & b.mask) == b.match;
      if (!subsumed || a.ext == b.ext) continue;
      ExtensionSet profile(0xffff);
      profile.remove(a.ext);
      const Decoder dec(profile);
      for (int rep = 0; rep < 8; ++rep) {
        const std::uint32_t word =
            a.match | (static_cast<std::uint32_t>(rng()) & ~a.mask);
        Instruction fast, ref;
        ASSERT_TRUE(dec.decode32(word, &fast))
            << "out-of-profile " << isa::mnemonic_name(a.mnemonic)
            << " masked in-profile " << isa::mnemonic_name(b.mnemonic);
        ASSERT_TRUE(dec.decode32_linear(word, &ref));
        EXPECT_TRUE(same_instruction(fast, ref));
      }
    }
  }

  // Direct restricted-profile checks: an out-of-profile word is invalid in
  // both paths, and in-profile decode is unaffected by the restriction.
  const Decoder rv64i(ExtensionSet::rv64i());
  const Decoder full(ExtensionSet::rv64gc());
  const std::uint32_t mul_word = 0x02c58533;  // mul a0, a1, a2 (M)
  Instruction out;
  EXPECT_FALSE(rv64i.decode32(mul_word, &out));
  EXPECT_FALSE(rv64i.decode32_linear(mul_word, &out));
  ASSERT_TRUE(full.decode32(mul_word, &out));
  EXPECT_EQ(out.mnemonic(), isa::Mnemonic::mul);
  const std::uint32_t add_word = 0x00c58533;  // add a0, a1, a2 (I)
  ASSERT_TRUE(rv64i.decode32(add_word, &out));
  EXPECT_EQ(out.mnemonic(), isa::Mnemonic::add);
}

// decode_range must walk a byte stream exactly like repeated decode() calls
// and stop where they stop.
TEST(DecodeFastPath, DecodeRangeMatchesSequentialDecode) {
  // Build a stream of valid encodings (mixed 16/32-bit) with an
  // undecodable tail.
  std::mt19937_64 rng(99);
  const Decoder dec(ExtensionSet::rv64gc());
  std::vector<std::uint8_t> buf;
  unsigned valid = 0;
  while (valid < 3000) {
    Instruction insn;
    if (rng() & 1) {
      const auto half = static_cast<std::uint16_t>(rng());
      if ((half & 3) == 3 || !dec.decode16(half, &insn)) continue;
      buf.push_back(static_cast<std::uint8_t>(half));
      buf.push_back(static_cast<std::uint8_t>(half >> 8));
    } else {
      const auto word = static_cast<std::uint32_t>(rng()) | 0x3;
      if (!dec.decode32(word, &insn)) continue;
      for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
    }
    ++valid;
  }
  const std::size_t valid_bytes = buf.size();
  for (int i = 0; i < 4; ++i) buf.push_back(0xff);  // all-ones: reserved

  // Reference walk.
  struct Step {
    std::size_t off;
    unsigned len;
    isa::Mnemonic mn;
  };
  std::vector<Step> expected;
  std::size_t off = 0;
  while (off < buf.size()) {
    Instruction insn;
    const unsigned n = dec.decode(buf.data() + off, buf.size() - off, &insn);
    if (n == 0) break;
    expected.push_back({off, n, insn.mnemonic()});
    off += n;
  }
  EXPECT_EQ(off, valid_bytes);

  std::size_t idx = 0;
  const std::size_t consumed = dec.decode_range(
      buf.data(), buf.size(),
      [&](std::size_t o, const Instruction& insn, unsigned len) {
        EXPECT_LT(idx, expected.size());
        if (idx < expected.size()) {
          EXPECT_EQ(o, expected[idx].off);
          EXPECT_EQ(len, expected[idx].len);
          EXPECT_EQ(insn.mnemonic(), expected[idx].mn);
        }
        ++idx;
        return true;
      });
  EXPECT_EQ(idx, expected.size());
  EXPECT_EQ(consumed, valid_bytes);

  // Early stop: returning false consumes through that instruction only.
  std::size_t seen = 0;
  const std::size_t part = dec.decode_range(
      buf.data(), buf.size(),
      [&](std::size_t, const Instruction&, unsigned) { return ++seen < 10; });
  EXPECT_EQ(seen, 10u);
  std::size_t want = 0;
  for (std::size_t i = 0; i < 10; ++i) want += expected[i].len;
  EXPECT_EQ(part, want);

  // Truncated input: a 32-bit encoding with only 2 bytes left is not decoded.
  const std::uint8_t trunc[2] = {0x33, 0x00};  // low parcel of `add`
  EXPECT_EQ(dec.decode_range(trunc, sizeof(trunc),
                             [](std::size_t, const Instruction&, unsigned) {
                               return true;
                             }),
            0u);
}

}  // namespace
