// InstructionAPI tests: decoding, encoding, operand access information,
// extension gating, and encode->decode round-trip properties.
#include <gtest/gtest.h>

#include "isa/decoder.hpp"
#include "isa/encoder.hpp"

namespace {

using namespace rvdyn::isa;

Instruction decode32_or_die(std::uint32_t word,
                            ExtensionSet profile = ExtensionSet::rv64gc()) {
  Decoder dec(profile);
  Instruction out;
  EXPECT_TRUE(dec.decode32(word, &out)) << std::hex << word;
  return out;
}

// ---- basic decode checks against hand-encoded words ----

TEST(Decode, AddiSpSpMinus16) {
  // addi sp, sp, -16  =  0xff010113
  Instruction i = decode32_or_die(0xff010113);
  EXPECT_EQ(i.mnemonic(), Mnemonic::addi);
  EXPECT_EQ(i.length(), 4u);
  ASSERT_EQ(i.num_operands(), 3u);
  EXPECT_EQ(i.operand(0).reg, sp);
  EXPECT_TRUE(i.operand(0).writes());
  EXPECT_EQ(i.operand(1).reg, sp);
  EXPECT_TRUE(i.operand(1).reads());
  EXPECT_EQ(i.operand(2).imm, -16);
  EXPECT_EQ(i.to_string(), "addi sp, sp, -16");
}

TEST(Decode, LoadDoubleword) {
  // ld a0, 8(sp) = 0x00813503
  Instruction i = decode32_or_die(0x00813503);
  EXPECT_EQ(i.mnemonic(), Mnemonic::ld);
  EXPECT_TRUE(i.reads_memory());
  ASSERT_EQ(i.num_operands(), 2u);
  EXPECT_EQ(i.operand(0).reg, a0);
  EXPECT_TRUE(i.operand(0).writes());
  const Operand& mem = i.operand(1);
  EXPECT_TRUE(mem.is_mem());
  EXPECT_EQ(mem.reg, sp);
  EXPECT_EQ(mem.imm, 8);
  EXPECT_EQ(mem.size, 8);
  EXPECT_TRUE(mem.reads());
}

TEST(Decode, StoreWord) {
  // sw a5, -20(s0) = 0xfef42623
  Instruction i = decode32_or_die(0xfef42623);
  EXPECT_EQ(i.mnemonic(), Mnemonic::sw);
  EXPECT_TRUE(i.writes_memory());
  EXPECT_EQ(i.operand(0).reg, a5);
  EXPECT_TRUE(i.operand(0).reads());
  EXPECT_EQ(i.operand(1).reg, s0);
  EXPECT_EQ(i.operand(1).imm, -20);
  EXPECT_EQ(i.operand(1).size, 4);
  EXPECT_TRUE(i.operand(1).writes());
}

TEST(Decode, JalRa) {
  // jal ra, +2048 -> 0x7ff0 00ef? Build via encoder, verify decoder fields.
  Instruction i =
      assemble(Mnemonic::jal, {Instruction::reg_op(ra, Operand::kWrite),
                               Instruction::pcrel_op(2048)});
  EXPECT_TRUE(i.is_jal());
  EXPECT_EQ(i.link_reg(), ra);
  EXPECT_EQ(i.branch_offset(), 2048);
}

TEST(Decode, JalrIsIndirect) {
  // jalr x0, 0(ra) = ret = 0x00008067
  Instruction i = decode32_or_die(0x00008067);
  EXPECT_EQ(i.mnemonic(), Mnemonic::jalr);
  EXPECT_TRUE(i.is_jalr());
  EXPECT_EQ(i.link_reg(), zero);
  EXPECT_EQ(i.operand(1).reg, ra);
}

TEST(Decode, BranchOffsets) {
  // beq a0, a1, -8
  Instruction i =
      assemble(Mnemonic::beq, {Instruction::reg_op(a0, Operand::kRead),
                               Instruction::reg_op(a1, Operand::kRead),
                               Instruction::pcrel_op(-8)});
  EXPECT_TRUE(i.is_cond_branch());
  EXPECT_EQ(i.branch_offset(), -8);
}

TEST(Decode, LuiEffectiveConstant) {
  Instruction i =
      assemble(Mnemonic::lui, {Instruction::reg_op(t0, Operand::kWrite),
                               Instruction::imm_op(0x12345000)});
  EXPECT_EQ(i.mnemonic(), Mnemonic::lui);
  EXPECT_EQ(i.operand(1).imm, 0x12345000);
}

TEST(Decode, AuipcNegative) {
  Instruction i =
      assemble(Mnemonic::auipc, {Instruction::reg_op(t0, Operand::kWrite),
                                 Instruction::imm_op(-0x1000)});
  EXPECT_EQ(i.operand(1).imm, -0x1000);
}

TEST(Decode, EcallEbreak) {
  EXPECT_EQ(decode32_or_die(0x00000073).mnemonic(), Mnemonic::ecall);
  EXPECT_EQ(decode32_or_die(0x00100073).mnemonic(), Mnemonic::ebreak);
}

TEST(Decode, InvalidWord) {
  Decoder dec;
  Instruction out;
  EXPECT_FALSE(dec.decode32(0x00000000, &out));
  EXPECT_FALSE(dec.decode32(0xffffffff, &out));
}

TEST(Decode, MulRequiresMExtension) {
  // mul a0, a1, a2 should decode under rv64gc but not rv64i.
  const std::uint32_t word = 0x02c58533;
  Instruction out;
  EXPECT_TRUE(Decoder(ExtensionSet::rv64gc()).decode32(word, &out));
  EXPECT_EQ(out.mnemonic(), Mnemonic::mul);
  EXPECT_FALSE(Decoder(ExtensionSet::rv64i()).decode32(word, &out));
}

TEST(Decode, FloatDoubleOps) {
  // fadd.d fa0, fa1, fa2 (rm=dynamic) = 0x02c5f553
  Instruction i = decode32_or_die(0x02c5f553);
  EXPECT_EQ(i.mnemonic(), Mnemonic::fadd_d);
  EXPECT_TRUE(i.has_flag(F_FLOAT));
  EXPECT_EQ(i.operand(0).reg, f(10));
  EXPECT_EQ(i.operand(1).reg, f(11));
  EXPECT_EQ(i.operand(2).reg, f(12));
}

TEST(Decode, AtomicAmoAdd) {
  // amoadd.w a0, a1, (a2): f5=00000, f3=010
  Instruction i = assemble(
      Mnemonic::amoadd_w,
      {Instruction::reg_op(a0, Operand::kWrite),
       Instruction::reg_op(a1, Operand::kRead),
       Instruction::mem_op(a2, 0, 4, Operand::kRW)});
  EXPECT_TRUE(i.has_flag(F_ATOMIC));
  EXPECT_TRUE(i.reads_memory());
  EXPECT_TRUE(i.writes_memory());
}

// ---- register sets ----

TEST(RegSets, ReadWriteSets) {
  // add a0, a1, a2
  Instruction i = decode32_or_die(0x00c58533);
  EXPECT_EQ(i.mnemonic(), Mnemonic::add);
  RegSet r = i.regs_read();
  EXPECT_TRUE(r.contains(a1));
  EXPECT_TRUE(r.contains(a2));
  EXPECT_FALSE(r.contains(a0));
  RegSet w = i.regs_written();
  EXPECT_TRUE(w.contains(a0));
  EXPECT_EQ(w.count(), 1u);
}

TEST(RegSets, WritesToX0AreDropped) {
  // addi x0, x0, 0 (canonical nop)
  Instruction i = decode32_or_die(0x00000013);
  EXPECT_TRUE(i.regs_written().empty());
}

TEST(RegSets, MemBaseIsRead) {
  Instruction i = decode32_or_die(0x00813503);  // ld a0, 8(sp)
  EXPECT_TRUE(i.regs_read().contains(sp));
}

// ---- compressed decoding ----

TEST(Compressed, CAddi) {
  // c.addi sp, -16: f3=000 q1, rd=2, imm=-16 -> 0x1141
  Decoder dec;
  Instruction i;
  ASSERT_TRUE(dec.decode16(0x1141, &i));
  EXPECT_EQ(i.mnemonic(), Mnemonic::addi);
  EXPECT_TRUE(i.compressed());
  EXPECT_EQ(i.length(), 2u);
  EXPECT_EQ(i.operand(0).reg, sp);
  EXPECT_EQ(i.operand(2).imm, -16);
}

TEST(Compressed, CLiAndCMv) {
  Decoder dec;
  Instruction i;
  // c.li a0, 1 = 0x4505
  ASSERT_TRUE(dec.decode16(0x4505, &i));
  EXPECT_EQ(i.mnemonic(), Mnemonic::addi);
  EXPECT_EQ(i.operand(0).reg, a0);
  EXPECT_EQ(i.operand(1).reg, zero);
  EXPECT_EQ(i.operand(2).imm, 1);
  // c.mv a0, a1 = 0x852e
  ASSERT_TRUE(dec.decode16(0x852e, &i));
  EXPECT_EQ(i.mnemonic(), Mnemonic::add);
  EXPECT_EQ(i.operand(0).reg, a0);
  EXPECT_EQ(i.operand(1).reg, zero);
  EXPECT_EQ(i.operand(2).reg, a1);
}

TEST(Compressed, CJrIsJalr) {
  // c.jr ra (= ret) = 0x8082
  Decoder dec;
  Instruction i;
  ASSERT_TRUE(dec.decode16(0x8082, &i));
  EXPECT_EQ(i.mnemonic(), Mnemonic::jalr);
  EXPECT_TRUE(i.compressed());
  EXPECT_EQ(i.link_reg(), zero);
  EXPECT_EQ(i.operand(1).reg, ra);
}

TEST(Compressed, CEbreak) {
  Decoder dec;
  Instruction i;
  ASSERT_TRUE(dec.decode16(0x9002, &i));
  EXPECT_EQ(i.mnemonic(), Mnemonic::ebreak);
}

TEST(Compressed, RejectedWithoutCExtension) {
  Decoder dec(ExtensionSet::rv64g());
  const std::uint8_t bytes[] = {0x41, 0x11};  // c.addi sp, -16
  Instruction i;
  EXPECT_EQ(dec.decode(bytes, sizeof(bytes), &i), 0u);
}

TEST(Compressed, AllZeroHalfwordIsInvalid) {
  Decoder dec;
  Instruction i;
  EXPECT_FALSE(dec.decode16(0x0000, &i));
}

// ---- stream decoding ----

TEST(Stream, MixedWidths) {
  // c.addi sp,-16 ; addi a0, a0, 1 ; c.ebreak
  const std::uint8_t bytes[] = {0x41, 0x11, 0x13, 0x05,
                                0x15, 0x00, 0x02, 0x90};
  Decoder dec;
  Instruction i;
  std::size_t off = 0;
  unsigned n = dec.decode(bytes + off, sizeof(bytes) - off, &i);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(i.mnemonic(), Mnemonic::addi);
  off += n;
  n = dec.decode(bytes + off, sizeof(bytes) - off, &i);
  ASSERT_EQ(n, 4u);
  EXPECT_EQ(i.mnemonic(), Mnemonic::addi);
  EXPECT_EQ(i.operand(2).imm, 1);
  off += n;
  n = dec.decode(bytes + off, sizeof(bytes) - off, &i);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(i.mnemonic(), Mnemonic::ebreak);
}

TEST(Stream, TruncatedBuffer) {
  const std::uint8_t bytes[] = {0x13};  // first byte of a 4-byte insn
  Decoder dec;
  Instruction i;
  EXPECT_EQ(dec.decode(bytes, 1, &i), 0u);
}

// ---- encode -> decode round-trip properties ----

struct RoundTripCase {
  Mnemonic mn;
  std::vector<Operand> ops;
};

class EncodeRoundTrip : public ::testing::TestWithParam<int> {};

// Every R-type integer op over a sweep of register triples.
TEST_P(EncodeRoundTrip, RTypeSweep) {
  const int seed = GetParam();
  static const Mnemonic kRType[] = {
      Mnemonic::add,  Mnemonic::sub,  Mnemonic::sll,  Mnemonic::slt,
      Mnemonic::sltu, Mnemonic::xor_, Mnemonic::srl,  Mnemonic::sra,
      Mnemonic::or_,  Mnemonic::and_, Mnemonic::addw, Mnemonic::subw,
      Mnemonic::mul,  Mnemonic::div,  Mnemonic::remu, Mnemonic::mulhu};
  for (const Mnemonic mn : kRType) {
    const Reg rd = x(static_cast<std::uint8_t>((seed * 7 + 3) % 32));
    const Reg rs1 = x(static_cast<std::uint8_t>((seed * 5 + 11) % 32));
    const Reg rs2 = x(static_cast<std::uint8_t>((seed * 3 + 17) % 32));
    Instruction i =
        assemble(mn, {Instruction::reg_op(rd, Operand::kWrite),
                      Instruction::reg_op(rs1, Operand::kRead),
                      Instruction::reg_op(rs2, Operand::kRead)});
    EXPECT_EQ(i.mnemonic(), mn);
    EXPECT_EQ(i.operand(0).reg, rd);
    EXPECT_EQ(i.operand(1).reg, rs1);
    EXPECT_EQ(i.operand(2).reg, rs2);
  }
}

TEST_P(EncodeRoundTrip, ITypeImmediateSweep) {
  const int seed = GetParam();
  const std::int64_t imms[] = {-2048, -1, 0, 1, 7, 42, 2047,
                               seed * 97 % 2048};
  for (const std::int64_t imm : imms) {
    Instruction i =
        assemble(Mnemonic::addi, {Instruction::reg_op(a0, Operand::kWrite),
                                  Instruction::reg_op(a1, Operand::kRead),
                                  Instruction::imm_op(imm)});
    EXPECT_EQ(i.operand(2).imm, imm);
  }
}

TEST_P(EncodeRoundTrip, BranchOffsetSweep) {
  const int seed = GetParam();
  const std::int64_t offs[] = {-4096, -2, 0, 2, 8, 4094,
                               (seed * 61 % 2048) * 2 - 2048};
  for (const std::int64_t off : offs) {
    Instruction i =
        assemble(Mnemonic::bne, {Instruction::reg_op(a0, Operand::kRead),
                                 Instruction::reg_op(zero, Operand::kRead),
                                 Instruction::pcrel_op(off)});
    EXPECT_EQ(i.branch_offset(), off);
  }
}

TEST_P(EncodeRoundTrip, JalOffsetSweep) {
  const int seed = GetParam();
  const std::int64_t offs[] = {-1048576, -2, 0, 2, 1048574,
                               (seed * 4099 % 1000000) * 2 - 1000000};
  for (const std::int64_t off : offs) {
    Instruction i =
        assemble(Mnemonic::jal, {Instruction::reg_op(ra, Operand::kWrite),
                                 Instruction::pcrel_op(off)});
    EXPECT_EQ(i.branch_offset(), off);
  }
}

TEST_P(EncodeRoundTrip, MemoryDisplacementSweep) {
  const int seed = GetParam();
  const std::int64_t disps[] = {-2048, -8, 0, 8, 2047, seed * 13 % 2048};
  for (const std::int64_t d : disps) {
    Instruction ld_i =
        assemble(Mnemonic::ld, {Instruction::reg_op(a0, Operand::kWrite),
                                Instruction::mem_op(sp, d, 8, Operand::kRead)});
    EXPECT_EQ(ld_i.operand(1).imm, d);
    Instruction sd_i = assemble(
        Mnemonic::sd, {Instruction::reg_op(a0, Operand::kRead),
                       Instruction::mem_op(sp, d, 8, Operand::kWrite)});
    EXPECT_EQ(sd_i.operand(1).imm, d);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EncodeRoundTrip, ::testing::Range(0, 16));

// Exhaustive compressed round-trip: for every 16-bit pattern that decodes,
// compressing the expansion must give back an equivalent instruction.
TEST(Compressed, ExhaustiveExpandCompressRoundTrip) {
  Decoder dec;
  unsigned decoded = 0, recompressed = 0;
  for (std::uint32_t h = 0; h <= 0xffff; ++h) {
    if (!is_compressed_encoding(static_cast<std::uint16_t>(h))) continue;
    Instruction exp;
    if (!dec.decode16(static_cast<std::uint16_t>(h), &exp)) continue;
    ++decoded;
    auto back = compress(exp);
    if (!back) continue;  // hints and a few asymmetric forms stay expanded
    ++recompressed;
    // Re-expanding the compressed encoding must give the same instruction.
    Instruction exp2;
    ASSERT_TRUE(dec.decode16(*back, &exp2)) << std::hex << h;
    EXPECT_EQ(exp.mnemonic(), exp2.mnemonic()) << std::hex << h;
    ASSERT_EQ(exp.num_operands(), exp2.num_operands()) << std::hex << h;
    for (unsigned k = 0; k < exp.num_operands(); ++k) {
      EXPECT_EQ(static_cast<int>(exp.operand(k).kind),
                static_cast<int>(exp2.operand(k).kind));
      EXPECT_EQ(exp.operand(k).reg, exp2.operand(k).reg) << std::hex << h;
      EXPECT_EQ(exp.operand(k).imm, exp2.operand(k).imm) << std::hex << h;
    }
  }
  // Sanity: a substantial portion of the compressed space decodes and
  // round-trips (c.nop-style hints legitimately stay expanded).
  EXPECT_GT(decoded, 20000u);
  EXPECT_GT(recompressed, 15000u);
}

// Exhaustive-by-construction 32-bit round trip: decode every word that any
// table entry could produce by sweeping the operand fields.
TEST(Decode, TableDrivenFieldSweep) {
  Decoder dec(ExtensionSet(0xffff));  // accept every known extension
  for (std::uint16_t m = 0; m < static_cast<std::uint16_t>(Mnemonic::kCount);
       ++m) {
    const OpcodeInfo& info = opcode_info(static_cast<Mnemonic>(m));
    // Sweep a few register-field patterns through the unmasked bits.
    for (const std::uint32_t fill :
         {0u, 0xffffffffu, 0x55555555u, 0xaaaaaaaau, 0x12345678u}) {
      const std::uint32_t word = info.match | (fill & ~info.mask);
      Instruction out;
      ASSERT_TRUE(dec.decode32(word, &out))
          << info.text << " fill=" << std::hex << fill;
      EXPECT_EQ(out.mnemonic(), static_cast<Mnemonic>(m))
          << info.text << " fill=" << std::hex << fill
          << " decoded as " << mnemonic_name(out.mnemonic());
    }
  }
}

TEST(Encode, OutOfRangeImmediatesThrow) {
  EXPECT_THROW(
      assemble(Mnemonic::addi, {Instruction::reg_op(a0, Operand::kWrite),
                                Instruction::reg_op(a0, Operand::kRead),
                                Instruction::imm_op(4096)}),
      rvdyn::Error);
  EXPECT_THROW(
      assemble(Mnemonic::jal, {Instruction::reg_op(ra, Operand::kWrite),
                               Instruction::pcrel_op(1 << 21)}),
      rvdyn::Error);
  EXPECT_THROW(
      assemble(Mnemonic::beq, {Instruction::reg_op(a0, Operand::kRead),
                               Instruction::reg_op(a1, Operand::kRead),
                               Instruction::pcrel_op(3)}),  // misaligned
      rvdyn::Error);
}

// ---- registers and extensions ----

TEST(Registers, NamesAndParsing) {
  EXPECT_EQ(reg_name(sp), "sp");
  EXPECT_EQ(reg_name(f(10)), "fa0");
  EXPECT_EQ(reg_arch_name(t6), "x31");
  Reg r;
  EXPECT_TRUE(parse_reg("a0", &r));
  EXPECT_EQ(r, a0);
  EXPECT_TRUE(parse_reg("x8", &r));
  EXPECT_EQ(r, s0);
  EXPECT_TRUE(parse_reg("fp", &r));
  EXPECT_EQ(r, s0);
  EXPECT_TRUE(parse_reg("ft11", &r));
  EXPECT_EQ(r, f(31));
  EXPECT_FALSE(parse_reg("x32", &r));
  EXPECT_FALSE(parse_reg("bogus", &r));
}

TEST(Registers, CallerSaved) {
  EXPECT_TRUE(is_caller_saved(t0));
  EXPECT_TRUE(is_caller_saved(a7));
  EXPECT_TRUE(is_caller_saved(ra));
  EXPECT_FALSE(is_caller_saved(s0));
  EXPECT_FALSE(is_caller_saved(sp));
  EXPECT_TRUE(is_caller_saved(f(0)));
  EXPECT_FALSE(is_caller_saved(f(9)));
}

TEST(Extensions, IsaStringRoundTrip) {
  const ExtensionSet gc = ExtensionSet::rv64gc();
  EXPECT_EQ(parse_isa_string(isa_string(gc)), gc);
  EXPECT_TRUE(parse_isa_string("rv64gc").has(Extension::M));
  EXPECT_TRUE(parse_isa_string("rv64gc").has(Extension::C));
  EXPECT_TRUE(parse_isa_string("rv64gc").has(Extension::Zicsr));
  EXPECT_FALSE(parse_isa_string("rv64imac").has(Extension::D));
  EXPECT_TRUE(parse_isa_string("rv64i2p1_m2a_zicsr2p0").has(Extension::M));
}

TEST(Extensions, ProfileInclusion) {
  EXPECT_TRUE(ExtensionSet::rv64gc().includes(ExtensionSet::rv64g()));
  EXPECT_FALSE(ExtensionSet::rv64g().includes(ExtensionSet::rv64gc()));
}

}  // namespace
