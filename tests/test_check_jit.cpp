// JIT differential oracle: every workload must run divergence-free on
// both backends (final registers, memory digest, per-pc profile), chunked
// session re-entry included — and a deliberately sabotaged template must
// be CAUGHT, proving the oracle has teeth.
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "emu/machine.hpp"  // for the RVDYN_JIT_ENABLED default
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using check::JitDiffBackend;
using check::JitDiffOptions;

struct Workload {
  const char* name;
  std::string src;
};

std::vector<Workload> suite() {
  return {
      {"matmul", workloads::matmul_program(10, 2)},
      {"sort", workloads::sort_program(64)},
      {"fib", workloads::fib_program(14)},
      {"dispatch", workloads::dispatch_program(48)},
      {"call_churn", workloads::call_churn_program(300)},
  };
}

void expect_clean(const check::JitDiffReport& rep, const std::string& label) {
  EXPECT_EQ(rep.divergence_count, 0u) << label;
  for (const auto& d : rep.divergences)
    ADD_FAILURE() << label << ": " << d.subject << ": " << d.detail;
  if (rep.jit_available) {
    EXPECT_GT(rep.jit_steps, 0u) << label;
    EXPECT_GT(rep.blocks_compiled, 0u) << label;
    EXPECT_GT(rep.profile_pcs, 0u) << label;
  }
}

TEST(CheckJit, AllWorkloadsBothBackends) {
  for (const auto bk : {JitDiffBackend::X64, JitDiffBackend::Threaded}) {
    for (const auto& w : suite()) {
      JitDiffOptions opts;
      opts.backend = bk;
      const auto rep = check::run_jit_diff(w.name, w.src, opts);
      expect_clean(rep, std::string(w.name) + "/" +
                            (bk == JitDiffBackend::X64 ? "x64" : "threaded"));
    }
  }
}

// Randomized run(k) chunks force budget side-exits and session re-entry at
// arbitrary points in the trace; state must still be bit-exact.
TEST(CheckJit, ChunkedSessionsStayExact) {
  for (const auto& w : suite()) {
    JitDiffOptions opts;
    opts.chunks = 37;
    const auto rep = check::run_jit_diff(w.name, w.src, opts);
    expect_clean(rep, std::string(w.name) + "/chunked");
  }
}

// Meta-test: compile `add` with a deliberately wrong template (result
// xor 1). If the oracle does not light up, it is not actually comparing
// anything that matters.
TEST(CheckJit, SabotagedTemplateIsCaught) {
  for (const auto bk : {JitDiffBackend::X64, JitDiffBackend::Threaded}) {
    JitDiffOptions opts;
    opts.backend = bk;
    opts.sabotage = isa::Mnemonic::add;
    const auto rep =
        check::run_jit_diff("matmul", workloads::matmul_program(10, 1), opts);
    if (!rep.jit_available) GTEST_SKIP() << "JIT compiled out";
    EXPECT_GT(rep.divergence_count, 0u)
        << (bk == JitDiffBackend::X64 ? "x64" : "threaded")
        << ": sabotaged add template produced zero divergences — the "
           "oracle is blind";
  }
}

// Sabotaging a mnemonic the workload never executes must stay clean: the
// hook perturbs only the targeted template, not the tier at large.
TEST(CheckJit, SabotageOfUnusedMnemonicIsClean) {
  JitDiffOptions opts;
  opts.sabotage = isa::Mnemonic::xor_;
  const auto rep =
      check::run_jit_diff("fib", workloads::fib_program(12), opts);
  if (!rep.jit_available) GTEST_SKIP() << "JIT compiled out";
  EXPECT_EQ(rep.divergence_count, 0u);
  for (const auto& d : rep.divergences) ADD_FAILURE() << d.detail;
}

TEST(CheckJit, ReportsUnavailableWhenCompiledOut) {
  const auto rep = check::run_jit_diff("fib", workloads::fib_program(8));
#if RVDYN_JIT_ENABLED
  EXPECT_TRUE(rep.jit_available);
#else
  EXPECT_FALSE(rep.jit_available);
  EXPECT_TRUE(rep.ok());
#endif
}

}  // namespace
