// Semantics JSON-pipeline tests (paper §3.2.4): ingesting the intermediate
// JSON regenerates the semantic classes without code changes; the exported
// table round-trips; overrides are live and reversible.
#include <gtest/gtest.h>

#include "isa/encoder.hpp"
#include "semantics/eval.hpp"
#include "semantics/pipeline.hpp"

namespace {

using namespace rvdyn;
using isa::Instruction;
using isa::Mnemonic;
using isa::Operand;

class PipelineTest : public ::testing::Test {
 protected:
  void TearDown() override { semantics::clear_spec_overrides(); }
};

std::optional<std::uint64_t> eval_add_a0_a1_a2() {
  const Instruction insn = isa::assemble(
      Mnemonic::add, {Instruction::reg_op(isa::a0, Operand::kWrite),
                      Instruction::reg_op(isa::a1, Operand::kRead),
                      Instruction::reg_op(isa::a2, Operand::kRead)});
  const auto sem = semantics::semantics_of(insn);
  if (!sem.precise || !sem.has_reg_write) return std::nullopt;
  const semantics::RegResolver rr =
      [](isa::Reg r) -> std::optional<std::uint64_t> {
    if (r == isa::a1) return 40;
    if (r == isa::a2) return 2;
    return std::nullopt;
  };
  return semantics::const_eval(*sem.reg_value, 0, 4, rr, {});
}

TEST_F(PipelineTest, ParseFlatObject) {
  const auto entries = semantics::parse_spec_json(
      R"({"add": "rd = rs1 + rs2", "sub": "rd = rs1 - rs2"})");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.at(Mnemonic::add), "rd = rs1 + rs2");
  EXPECT_EQ(entries.at(Mnemonic::sub), "rd = rs1 - rs2");
}

TEST_F(PipelineTest, ParseRejectsMalformed) {
  EXPECT_THROW(semantics::parse_spec_json("not json"), Error);
  EXPECT_THROW(semantics::parse_spec_json("{\"add\": 5}"), Error);
  EXPECT_THROW(semantics::parse_spec_json("{\"add\": \"x\""), Error);
  EXPECT_THROW(semantics::parse_spec_json(
                   R"({"add": "a", "add": "b"})"),
               Error);
  EXPECT_THROW(semantics::parse_spec_json(R"({"bogus_op": "rd = 1"})"),
               Error);
  EXPECT_THROW(semantics::parse_spec_json(R"({} trailing)"), Error);
}

TEST_F(PipelineTest, ParseHandlesEscapesAndWhitespace) {
  const auto entries = semantics::parse_spec_json(
      "  {\n  \"add\" : \"rd = rs1 \\\\ rs2\"\n }  ");
  EXPECT_EQ(entries.at(Mnemonic::add), "rd = rs1 \\ rs2");
  EXPECT_TRUE(semantics::parse_spec_json("{}").empty());
}

TEST_F(PipelineTest, OverridesAreLiveAndReversible) {
  ASSERT_EQ(eval_add_a0_a1_a2(), std::optional<std::uint64_t>(42));

  // Regenerate "add" with (deliberately wrong) subtract semantics, as if a
  // fresh pipeline run produced different JSON.
  semantics::install_spec_overrides(
      semantics::parse_spec_json(R"({"add": "rd = rs1 - rs2"})"));
  EXPECT_EQ(eval_add_a0_a1_a2(), std::optional<std::uint64_t>(38));

  semantics::clear_spec_overrides();
  EXPECT_EQ(eval_add_a0_a1_a2(), std::optional<std::uint64_t>(42));
}

TEST_F(PipelineTest, EmptySpecForcesConservative) {
  semantics::install_spec_overrides(
      semantics::parse_spec_json(R"({"add": ""})"));
  const Instruction insn = isa::assemble(
      Mnemonic::add, {Instruction::reg_op(isa::a0, Operand::kWrite),
                      Instruction::reg_op(isa::a1, Operand::kRead),
                      Instruction::reg_op(isa::a2, Operand::kRead)});
  const auto sem = semantics::semantics_of(insn);
  EXPECT_FALSE(sem.precise);  // conservative summary
}

TEST_F(PipelineTest, DumpParsesBackIdentically) {
  const std::string json = semantics::dump_spec_json();
  const auto entries = semantics::parse_spec_json(json);
  // Every dumped entry survives the round trip with identical text.
  for (const auto& [mn, spec] : entries)
    EXPECT_EQ(spec, semantics::semantics_spec(mn))
        << isa::mnemonic_name(mn);
  // And the dump covers the whole modelled subset.
  EXPECT_GE(entries.size(), 90u);
}

TEST_F(PipelineTest, RegeneratedTableStillValidatesDifferentially) {
  // Install the full dumped table as overrides (a no-op regeneration) and
  // spot-check a computed value against the emulator-validated expectation.
  semantics::install_spec_overrides(
      semantics::parse_spec_json(semantics::dump_spec_json()));
  EXPECT_EQ(eval_add_a0_a1_a2(), std::optional<std::uint64_t>(42));
}

}  // namespace
