// rvdyn::obs unit tests: registry correctness under concurrency and the
// trace exporters' output format.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rvdyn::obs {
namespace {

TEST(Registry, CounterSumsExactlyAcrossThreads) {
  Registry& r = Registry::instance();
  const Counter c("test.obs.concurrent");
  const std::uint64_t before = r.value("test.obs.concurrent");

  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();

  // Lock-free sharded adds must still sum to the exact total.
  EXPECT_EQ(r.value("test.obs.concurrent") - before, kThreads * kPerThread);
}

TEST(Registry, RegistrationIsIdempotent) {
  Registry& r = Registry::instance();
  const auto a = r.register_metric("test.obs.idem", MetricKind::Counter);
  const auto b = r.register_metric("test.obs.idem", MetricKind::Counter);
  EXPECT_EQ(a, b);
}

TEST(Registry, GaugeKeepsLastValue) {
  Registry& r = Registry::instance();
  const Gauge g("test.obs.gauge");
  g.set(41);
  g.set(42);
  EXPECT_EQ(r.value("test.obs.gauge"), 42u);
}

TEST(Registry, HistogramCountSumMaxBuckets) {
  Registry& r = Registry::instance();
  const Histogram h("test.obs.hist");
  const std::uint64_t c0 = r.value("test.obs.hist.count");
  const std::uint64_t s0 = r.value("test.obs.hist.sum");
  h.record(0);
  h.record(1);
  h.record(3);
  h.record(1000);
  EXPECT_EQ(r.value("test.obs.hist.count") - c0, 4u);
  EXPECT_EQ(r.value("test.obs.hist.sum") - s0, 1004u);
  EXPECT_EQ(r.value("test.obs.hist.max"), 1000u);
  EXPECT_GE(r.value("test.obs.hist.b0"), 1u);   // the zero
  EXPECT_GE(r.value("test.obs.hist.b1"), 1u);   // 1
  EXPECT_GE(r.value("test.obs.hist.b2"), 1u);   // 3
  EXPECT_GE(r.value("test.obs.hist.b10"), 1u);  // 1000 (bit width 10)
}

TEST(Registry, SnapshotIsSortedAndJsonWellFormed) {
  Registry& r = Registry::instance();
  Counter("test.obs.snap.a").add(1);
  Counter("test.obs.snap.b").add(2);
  const auto samples = r.snapshot();
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_LT(samples[i - 1].name, samples[i].name);

  const std::string json = r.to_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"test.obs.snap.a\": "), std::string::npos);
}

TEST(Registry, UnknownMetricReadsZero) {
  EXPECT_EQ(Registry::instance().value("test.obs.never.registered"), 0u);
}

TEST(Trace, SpansBalanceAndExportChromeJson) {
  TraceSink& sink = TraceSink::instance();
  sink.clear();
  sink.set_enabled(true);
  {
    Span outer("test.outer");
    { Span inner("test.inner"); }
    sink.instant("test.marker");
  }
  sink.set_enabled(false);

  const auto evs = sink.events();
  ASSERT_EQ(evs.size(), 5u);
  // Nesting order: outer-B, inner-B, inner-E, marker-i, outer-E.
  EXPECT_EQ(evs[0].phase, 'B');
  EXPECT_STREQ(evs[0].name, "test.outer");
  EXPECT_EQ(evs[1].phase, 'B');
  EXPECT_STREQ(evs[1].name, "test.inner");
  EXPECT_EQ(evs[2].phase, 'E');
  EXPECT_EQ(evs[3].phase, 'i');
  EXPECT_EQ(evs[4].phase, 'E');
  EXPECT_STREQ(evs[4].name, "test.outer");
  // Timestamps never go backwards in claim order.
  for (std::size_t i = 1; i < evs.size(); ++i)
    EXPECT_LE(evs[i - 1].ts_ns, evs[i].ts_ns);

  // Chrome trace_event schema: every event carries the required keys, and
  // instants carry a scope.
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\", \"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check; the names are
  // all identifiers, so no string can skew the count).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Trace, TextExporterShowsNestingAndDurations) {
  TraceSink& sink = TraceSink::instance();
  sink.clear();
  sink.set_enabled(true);
  {
    Span outer("test.text.outer");
    { Span inner("test.text.inner"); }
  }
  sink.set_enabled(false);

  const std::string text = sink.text();
  // Inner closes first, so it prints first; both lines carry a duration.
  const auto inner_pos = text.find("test.text.inner");
  const auto outer_pos = text.find("test.text.outer");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
  EXPECT_NE(text.find("us)"), std::string::npos);
}

TEST(Trace, RingWraparoundDropsOrphanedEndsAndFlagsTruncation) {
  TraceSink& sink = TraceSink::instance();
  sink.clear();
  sink.set_enabled(true);

  // A span whose begin will be overwritten by the wrap...
  sink.begin("test.wrap.orphan");
  // ...enough filler to wrap the ring past the 'B' above...
  for (std::size_t i = 0; i < TraceSink::kCapacity + 16; ++i)
    sink.instant("test.wrap.filler");
  // ...a balanced span recorded after the wrap, which must survive...
  sink.begin("test.wrap.survivor");
  sink.end("test.wrap.survivor");
  // ...and the orphaned end whose begin is gone.
  sink.end("test.wrap.orphan");
  sink.set_enabled(false);

  ASSERT_TRUE(sink.truncated());
  // 1 orphan B + (kCapacity+16) fillers + 2 survivor + 1 orphan E recorded;
  // everything past kCapacity was lost to the wrap.
  EXPECT_EQ(sink.dropped(), 20u);

  const auto evs = sink.render_events();
  ASSERT_FALSE(evs.empty());
  // The cut is flagged first, as an instant, at the earliest retained
  // timestamp.
  EXPECT_STREQ(evs.front().name, TraceSink::kTruncationMarker);
  EXPECT_EQ(evs.front().phase, 'i');
  // The orphaned 'E' is dropped; the balanced post-wrap span survives.
  unsigned orphan_ends = 0, survivor_b = 0, survivor_e = 0;
  for (const auto& e : evs) {
    if (std::string(e.name) == "test.wrap.orphan" && e.phase == 'E')
      ++orphan_ends;
    if (std::string(e.name) == "test.wrap.survivor") {
      if (e.phase == 'B') ++survivor_b;
      if (e.phase == 'E') ++survivor_e;
    }
  }
  EXPECT_EQ(orphan_ends, 0u);
  EXPECT_EQ(survivor_b, 1u);
  EXPECT_EQ(survivor_e, 1u);

  // Depth never goes negative in a seq-order replay of the rendered
  // stream — the invariant both exporters rely on.
  long depth = 0;
  for (const auto& e : evs) {
    if (e.phase == 'B') ++depth;
    if (e.phase == 'E') --depth;
    ASSERT_GE(depth, 0);
  }

  // Both exporters consume the rendered stream: the truncation marker
  // shows up, the orphan never renders as a span.
  const std::string text = sink.text();
  EXPECT_NE(text.find(TraceSink::kTruncationMarker), std::string::npos);
  EXPECT_EQ(text.find("test.wrap.orphan ("), std::string::npos);
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find(TraceSink::kTruncationMarker), std::string::npos);

  sink.clear();
  EXPECT_FALSE(sink.truncated());
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(Trace, NoWraparoundRendersUnchanged) {
  TraceSink& sink = TraceSink::instance();
  sink.clear();
  sink.set_enabled(true);
  {
    Span s("test.nowrap.span");
    sink.instant("test.nowrap.marker");
  }
  sink.set_enabled(false);
  ASSERT_FALSE(sink.truncated());
  const auto plain = sink.events();
  const auto rendered = sink.render_events();
  ASSERT_EQ(plain.size(), rendered.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].seq, rendered[i].seq);
    EXPECT_STREQ(plain[i].name, rendered[i].name);
  }
  EXPECT_EQ(sink.chrome_json().find(TraceSink::kTruncationMarker),
            std::string::npos);
}

TEST(Trace, DisabledSinkRecordsNothing) {
  TraceSink& sink = TraceSink::instance();
  sink.clear();
  sink.set_enabled(false);
  {
    Span s("test.disabled");
    sink.instant("test.disabled.marker");
  }
  EXPECT_TRUE(sink.events().empty());
}

}  // namespace
}  // namespace rvdyn::obs
