// JIT tier semantics: compiled hot blocks must be invisible except for
// speed. Covers tier engagement, both backends, x0-write suppression,
// budget/session exactness, chaining, the jalr dispatch table, config
// drift, and the enable/disable toggle.
#include <gtest/gtest.h>

#include <vector>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;

#if RVDYN_JIT_ENABLED

using emu::jit::BackendKind;

const BackendKind kBackends[] = {BackendKind::X64, BackendKind::Threaded};

const char* bk_name(BackendKind b) {
  return b == BackendKind::X64 ? "x64" : "threaded";
}

void put32(Machine& m, std::uint64_t addr, std::uint32_t word) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(word >> (8 * i));
  m.write_code(addr, b, 4);
}

struct FinalState {
  StopReason stop;
  int exit_code;
  std::uint64_t pc, instret, cycles, mem;
  std::uint64_t x[32], f[32];
  bool operator==(const FinalState&) const = default;
};

FinalState snap(Machine& m, StopReason r) {
  FinalState s{};
  s.stop = r;
  s.exit_code = m.exit_code();
  s.pc = m.pc();
  s.instret = m.instret();
  s.cycles = m.cycles();
  s.mem = m.memory().digest();
  for (unsigned i = 0; i < 32; ++i) {
    s.x[i] = m.get_x(i);
    s.f[i] = m.get_f(i);
  }
  return s;
}

FinalState run_interp(const symtab::Symtab& bin,
                      std::uint64_t max_steps = 100'000'000) {
  Machine m;
  m.set_jit_enabled(false);
  m.load(bin);
  return snap(m, m.run(max_steps));
}

TEST(Jit, EngagesOnHotLoopAndMatchesInterpreter) {
  const auto bin = assembler::assemble(workloads::matmul_program(12, 2));
  const FinalState ref = run_interp(bin);
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 2;
    m.load(bin);
    const FinalState got = snap(m, m.run(100'000'000));
    EXPECT_TRUE(got == ref) << bk_name(bk);
    const auto s = m.jit_stats();
    EXPECT_GT(s.blocks_compiled, 0u) << bk_name(bk);
    // A triple loop spends nearly all retirement in compiled code.
    EXPECT_GT(s.insns_retired, got.instret / 2) << bk_name(bk);
    EXPECT_GT(s.chains_installed, 0u) << bk_name(bk);
  }
}

TEST(Jit, DispatchTableServesIndirectCalls) {
  const auto bin = assembler::assemble(workloads::call_churn_program(500));
  const FinalState ref = run_interp(bin);
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 2;
    m.load(bin);
    const FinalState got = snap(m, m.run(100'000'000));
    EXPECT_TRUE(got == ref) << bk_name(bk);
    // Returns (jalr) from the hot leaf resolve through the dispatch table
    // without leaving the session.
    EXPECT_GT(m.jit_stats().dispatch_hits, 100u) << bk_name(bk);
  }
}

// x0 writes inside compiled code must be discarded, not stored: templates
// route them to a sink slot.
TEST(Jit, X0WritesAreSuppressed) {
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 1;
    // loop: addi x0, x0, 7; addi a1, x0, 3; addi a0, a0, -1; bnez a0, loop
    put32(m, 0x1000, 0x00700013);
    put32(m, 0x1004, 0x00300593);
    put32(m, 0x1008, 0xfff50513);
    put32(m, 0x100c, 0xfe051ae3);  // bne a0, x0, -12
    put32(m, 0x1010, 0x00100073);  // ebreak
    m.set_pc(0x1000);
    m.set_x(10, 50);
    EXPECT_EQ(m.run(100000), StopReason::Breakpoint) << bk_name(bk);
    EXPECT_EQ(m.get_x(0), 0u) << bk_name(bk);
    EXPECT_EQ(m.get_x(11), 3u) << bk_name(bk);
    EXPECT_EQ(m.get_x(10), 0u) << bk_name(bk);
    EXPECT_GT(m.jit_stats().insns_retired, 100u) << bk_name(bk);
  }
}

// run(max_steps) must retire exactly max_steps when the program keeps
// going — sessions respect the budget via the kExitBudget side-exit — and
// chopping one run into arbitrary chunks lands on identical state.
TEST(Jit, BudgetIsExactAcrossChunkedRuns) {
  const auto bin = assembler::assemble(workloads::sort_program(64));
  const FinalState ref = run_interp(bin);
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 2;
    m.load(bin);
    std::uint64_t retired = 0;
    StopReason r = StopReason::Running;
    const std::uint64_t chunks[] = {1, 7, 100, 3, 1000, 17, 999983};
    unsigned i = 0;
    while (r == StopReason::Running) {
      const std::uint64_t k = chunks[i++ % 7];
      const std::uint64_t before = m.instret();
      r = m.run(k);
      const std::uint64_t done = m.instret() - before;
      ASSERT_LE(done, k) << bk_name(bk);
      if (r == StopReason::Running) {
        ASSERT_EQ(done, k) << bk_name(bk);  // budget exact, not approximate
      }
      retired += done;
      ASSERT_LT(retired, 100'000'000u) << bk_name(bk);
    }
    const FinalState got = snap(m, r);
    EXPECT_TRUE(got == ref) << bk_name(bk);
  }
}

TEST(Jit, HotThresholdRespected) {
  const auto bin = assembler::assemble(workloads::fib_program(10));
  Machine m;
  m.jit_config().hot_threshold = 0xffffffff;
  m.load(bin);
  EXPECT_EQ(m.run(100'000'000), StopReason::Exited);
  EXPECT_EQ(m.jit_stats().blocks_compiled, 0u);
  EXPECT_EQ(m.jit_stats().insns_retired, 0u);
}

TEST(Jit, DisableMidRunAndReenable) {
  const auto bin = assembler::assemble(workloads::matmul_program(10, 3));
  const FinalState ref = run_interp(bin);
  Machine m;
  m.jit_config().hot_threshold = 2;
  m.load(bin);
  // Warm up the tier, then disable: compiled blocks are dropped and the
  // interpreter carries on; re-enabling recompiles (epoch bump makes the
  // stale bcache stamps re-offer their blocks).
  EXPECT_EQ(m.run(5000), StopReason::Running);
  EXPECT_GT(m.jit_stats().blocks_compiled, 0u);
  m.set_jit_enabled(false);
  EXPECT_EQ(m.run(5000), StopReason::Running);
  const auto mid = m.jit_stats();
  EXPECT_GT(mid.evict_config, 0u);
  m.set_jit_enabled(true);
  const StopReason r = m.run(100'000'000);
  const FinalState got = snap(m, r);
  EXPECT_TRUE(got == ref);
  EXPECT_GT(m.jit_stats().blocks_compiled, mid.blocks_compiled);
}

// Changing the cycle model between runs is config drift: compiled blocks
// bake in per-block cycle totals, so the tier must flush and recompile
// rather than keep charging the old costs.
TEST(Jit, CycleModelDriftFlushesCompiledCode) {
  const auto bin = assembler::assemble(workloads::fib_program(12));
  // Reference for the second model, interpreter only.
  Machine ref;
  ref.set_jit_enabled(false);
  ref.load(bin);
  ref.cycle_model().load = 11;
  const StopReason ref_r = ref.run(100'000'000);

  Machine m;
  m.jit_config().hot_threshold = 2;
  m.load(bin);
  EXPECT_EQ(m.run(2000), StopReason::Running);  // compile under model A
  EXPECT_GT(m.jit_stats().blocks_compiled, 0u);
  m.cycle_model().load = 11;  // drift
  const StopReason r = m.run(100'000'000);
  EXPECT_EQ(static_cast<int>(r), static_cast<int>(ref_r));
  EXPECT_GT(m.jit_stats().evict_config, 0u);
  // Cycles must reflect model B for everything retired after the switch.
  // Both machines executed the prefix under model A? No — the reference
  // ran entirely under model B, so only the tail after drift can differ.
  // Run a third machine fully under model B with the JIT on to close the
  // loop exactly.
  Machine m2;
  m2.jit_config().hot_threshold = 2;
  m2.load(bin);
  m2.cycle_model().load = 11;
  EXPECT_EQ(static_cast<int>(m2.run(100'000'000)),
            static_cast<int>(ref_r));
  EXPECT_EQ(m2.cycles(), ref.cycles());
  EXPECT_EQ(m2.instret(), ref.instret());
}

// Per-pc profiling compiled in: hits and cycles attributed per pc must be
// identical to the interpreter's attribution.
TEST(Jit, PcProfileMatchesInterpreter) {
  const auto bin = assembler::assemble(workloads::fib_program(12));
  Machine ref;
  ref.set_jit_enabled(false);
  ref.enable_pc_profile(true);
  ref.load(bin);
  EXPECT_EQ(ref.run(100'000'000), StopReason::Exited);
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 2;
    m.enable_pc_profile(true);
    m.load(bin);
    EXPECT_EQ(m.run(100'000'000), StopReason::Exited) << bk_name(bk);
    EXPECT_GT(m.jit_stats().insns_retired, 0u) << bk_name(bk);
    ASSERT_EQ(m.pc_profile().size(), ref.pc_profile().size()) << bk_name(bk);
    for (const auto& [pc, e] : ref.pc_profile()) {
      auto it = m.pc_profile().find(pc);
      ASSERT_NE(it, m.pc_profile().end()) << bk_name(bk) << " pc " << pc;
      EXPECT_EQ(it->second.hits, e.hits) << bk_name(bk) << " pc " << pc;
      EXPECT_EQ(it->second.cycles, e.cycles) << bk_name(bk) << " pc " << pc;
    }
  }
}

// Watchpoints and tracing bypass the JIT wholesale (compiled code cannot
// honor per-insn hooks); the tier must stand down, not misfire.
TEST(Jit, WatchpointsForceInterpreter) {
  Machine m;
  m.jit_config().hot_threshold = 1;
  // loop: sw a1, 0(a2); addi a0, a0, -1; bnez a0, loop; ebreak
  put32(m, 0x1000, 0x00b62023);
  put32(m, 0x1004, 0xfff50513);
  put32(m, 0x1008, 0xfe051ce3);  // bne a0, x0, -8
  put32(m, 0x100c, 0x00100073);
  m.set_pc(0x1000);
  m.set_x(10, 100);
  m.set_x(11, 42);
  m.set_x(12, 0x8000);
  m.set_watchpoint(0x8000, 8, /*on_read=*/false, /*on_write=*/true);
  EXPECT_EQ(m.run(100000), StopReason::Watchpoint);
  EXPECT_EQ(m.jit_stats().insns_retired, 0u);
}

TEST(Jit, CapacityEvictionStaysCorrect) {
  const auto bin = assembler::assemble(workloads::fib_program(12));
  const FinalState ref = run_interp(bin);
  for (BackendKind bk : kBackends) {
    Machine m;
    m.jit_config().backend = bk;
    m.jit_config().hot_threshold = 1;
    m.jit_config().max_blocks = 2;  // thrash: every third compile evicts all
    m.load(bin);
    const FinalState got = snap(m, m.run(100'000'000));
    EXPECT_TRUE(got == ref) << bk_name(bk);
    EXPECT_GT(m.jit_stats().evict_capacity, 0u) << bk_name(bk);
  }
}

TEST(Jit, BackendReportsName) {
  const auto bin = assembler::assemble(workloads::fib_program(8));
  Machine m;
  m.jit_config().hot_threshold = 1;
  m.load(bin);
  EXPECT_EQ(m.run(100'000'000), StopReason::Exited);
  ASSERT_NE(m.jit_tier(), nullptr);
  const std::string name = m.jit_tier()->backend_name();
  EXPECT_TRUE(name == "x64" || name == "threaded") << name;
#if defined(__x86_64__) && defined(__linux__)
  // On x86-64 Linux with a mappable RWX arena, Auto must pick the
  // template backend, not the fallback.
  if (emu::jit::x64_backend_available()) {
    EXPECT_EQ(name, "x64");
  }
#endif
}

#else  // !RVDYN_JIT_ENABLED

TEST(Jit, CompiledOut) {
  // -DRVDYN_JIT=OFF build: the tier is absent and the interpreter carries
  // every workload. Nothing to assert beyond "this binary builds and runs".
  Machine m;
  const auto bin = assembler::assemble(workloads::fib_program(10));
  m.load(bin);
  EXPECT_EQ(m.run(100'000'000), StopReason::Exited);
}

#endif  // RVDYN_JIT_ENABLED

}  // namespace
