// Workload-substrate tests: every generated mutatee assembles, runs to a
// deterministic exit, parses cleanly, and survives whole-binary
// instrumentation — the invariants the bench harnesses rely on.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "codegen/snippet.hpp"
#include "emu/machine.hpp"
#include "parse/cfg.hpp"
#include "patch/editor.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;

struct RunOutcome {
  int exit_code;
  std::uint64_t instret;
};

RunOutcome run(const symtab::Symtab& bin,
               std::uint64_t max_steps = 200'000'000) {
  Machine m;
  m.load(bin);
  EXPECT_EQ(static_cast<int>(m.run(max_steps)),
            static_cast<int>(StopReason::Exited));
  return {m.exit_code(), m.instret()};
}

TEST(Workloads, MatmulDeterministicAndTimed) {
  const auto bin = assembler::assemble(workloads::matmul_program(20, 2));
  Machine m;
  m.load(bin);
  ASSERT_EQ(static_cast<int>(m.run(200'000'000)),
            static_cast<int>(StopReason::Exited));
  const auto* sym = bin.find_symbol("elapsed_ns");
  ASSERT_NE(sym, nullptr);
  EXPECT_GT(m.memory().read(sym->value, 8), 0u);
  // Deterministic: a second run gives the same exit and timing.
  Machine m2;
  m2.load(bin);
  m2.run(200'000'000);
  EXPECT_EQ(m2.exit_code(), m.exit_code());
  EXPECT_EQ(m2.memory().read(sym->value, 8),
            m.memory().read(sym->value, 8));
}

TEST(Workloads, MatmulScalesWithN) {
  const auto small = run(assembler::assemble(workloads::matmul_program(8, 1)));
  const auto big = run(assembler::assemble(workloads::matmul_program(16, 1)));
  // Triple loop: 2x n means ~8x instructions.
  EXPECT_GT(big.instret, small.instret * 5);
}

TEST(Workloads, MatmulBlockCountNearPaper) {
  const auto bin = assembler::assemble(workloads::matmul_program(10, 1));
  parse::CodeObject co(bin);
  co.parse();
  const auto* f = co.function_named("matmul");
  ASSERT_NE(f, nullptr);
  // The paper reports 11 basic blocks for its gcc-compiled multiply.
  EXPECT_GE(f->blocks().size(), 9u);
  EXPECT_LE(f->blocks().size(), 12u);
}

TEST(Workloads, FibMatchesClosedForm) {
  auto fib = [](int n) {
    long a = 0, b = 1;
    for (int i = 0; i < n; ++i) {
      const long t = a + b;
      a = b;
      b = t;
    }
    return a;
  };
  for (const int n : {1, 5, 10, 15}) {
    const auto out = run(assembler::assemble(workloads::fib_program(n)));
    EXPECT_EQ(out.exit_code, static_cast<int>(fib(n) & 0xff)) << "n=" << n;
  }
}

TEST(Workloads, DispatchUsesAJumpTable) {
  const auto bin = assembler::assemble(workloads::dispatch_program(16));
  parse::CodeObject co(bin);
  co.parse();
  const auto* f = co.function_named("dispatch");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->stats().n_jump_tables, 1u);
  EXPECT_EQ(f->stats().n_unresolved, 0u);
  run(bin);  // must terminate cleanly
}

TEST(Workloads, ManyFunctionParsesCompletely) {
  const auto bin =
      assembler::assemble(workloads::many_function_program(100));
  parse::CodeObject co(bin);
  co.parse();
  EXPECT_EQ(co.functions().size(), 101u);  // _start + 100
  EXPECT_EQ(co.total_stats().n_unresolved, 0u);
  EXPECT_EQ(run(bin).exit_code, 0);
}

TEST(Workloads, SortProgramSelfChecks) {
  // exit 0 == sorted; also verify the keys really end up ascending.
  const auto bin = assembler::assemble(workloads::sort_program(64));
  Machine m;
  m.load(bin);
  ASSERT_EQ(static_cast<int>(m.run(10'000'000)),
            static_cast<int>(StopReason::Exited));
  EXPECT_EQ(m.exit_code(), 0);
  const auto* keys = bin.find_symbol("keys");
  ASSERT_NE(keys, nullptr);
  std::uint64_t prev = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v = m.memory().read(keys->value + 8 * i, 8);
    EXPECT_GE(v, prev) << "index " << i;
    prev = v;
  }
}

TEST(Workloads, SortSurvivesBlockInstrumentation) {
  const auto bin = assembler::assemble(workloads::sort_program(48));
  patch::BinaryEditor editor(bin);
  const auto c = editor.alloc_var("blocks");
  for (const auto& [entry, f] : editor.code().functions())
    editor.insert_at(entry, patch::PointType::BlockEntry,
                     codegen::increment(c));
  const auto rewritten = editor.commit();
  Machine m;
  m.load(rewritten);
  ASSERT_EQ(static_cast<int>(m.run(50'000'000)),
            static_cast<int>(StopReason::Exited));
  EXPECT_EQ(m.exit_code(), 0);
  EXPECT_GT(m.memory().read(c.addr, 8), 1000u);  // data-dependent count
}

TEST(Workloads, AllWorkloadsSurviveFullInstrumentation) {
  struct Case {
    const char* name;
    std::string src;
  };
  const Case cases[] = {
      {"matmul", workloads::matmul_program(8, 1)},
      {"call_churn", workloads::call_churn_program(50)},
      {"fib", workloads::fib_program(10)},
      {"dispatch", workloads::dispatch_program(12)},
      {"many_function", workloads::many_function_program(30)},
  };
  for (const auto& c : cases) {
    const auto bin = assembler::assemble(c.src);
    const auto base = run(bin);

    patch::BinaryEditor editor(bin);
    const auto counter = editor.alloc_var("c");
    for (const auto& [entry, f] : editor.code().functions())
      editor.insert_at(entry, patch::PointType::BlockEntry,
                       codegen::increment(counter));
    const auto rewritten = editor.commit();

    Machine m;
    m.load(rewritten);
    // Trap springboards would need the proccontrol runtime; these
    // workloads should not need them with the default patch base.
    EXPECT_TRUE(editor.trap_table().empty()) << c.name;
    ASSERT_EQ(static_cast<int>(m.run(400'000'000)),
              static_cast<int>(StopReason::Exited))
        << c.name;
    EXPECT_EQ(m.exit_code(), base.exit_code) << c.name;
    EXPECT_GT(m.memory().read(counter.addr, 8), 0u) << c.name;
  }
}

}  // namespace
