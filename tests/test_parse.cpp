// ParseAPI tests: CFG construction, block splitting, and the paper's
// jal/jalr multi-use classification (§3.2.3) — returns, calls, jumps,
// tail calls, jump tables, and unresolvable transfers.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "parse/classify.hpp"
#include "parse/loops.hpp"

namespace {

using namespace rvdyn;
using parse::BranchKind;
using parse::Block;
using parse::CodeObject;
using parse::EdgeType;
using parse::Function;

struct Parsed {
  symtab::Symtab st;
  std::unique_ptr<CodeObject> co;
};

Parsed parse_src(const std::string& src, parse::ParseOptions opts = {},
                 assembler::Options aopts = {}) {
  Parsed p{assembler::assemble(src, aopts), nullptr};
  p.co = std::make_unique<CodeObject>(p.st);
  p.co->parse(opts);
  return p;
}

bool has_edge(const Block* b, EdgeType t) {
  for (const auto& e : b->succs())
    if (e.type == t) return true;
  return false;
}

const parse::Edge* edge_of(const Block* b, EdgeType t) {
  for (const auto& e : b->succs())
    if (e.type == t) return &e;
  return nullptr;
}

// Terminating block(s) of a function with a given edge type.
std::vector<const Block*> blocks_with_edge(const Function* f, EdgeType t) {
  std::vector<const Block*> out;
  for (const auto& [a, b] : f->blocks())
    if (has_edge(b.get(), t)) out.push_back(b.get());
  return out;
}

TEST(Parse, StraightLineFunction) {
  auto p = parse_src(R"(
    .globl _start
_start:
    li a0, 0
    li a7, 93
    ecall
)");
  Function* f = p.co->function_named("_start");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->blocks().size(), 1u);
  EXPECT_EQ(f->entry_block()->insns().size(), 3u);  // li, li, ecall
}

TEST(Parse, BranchSplitsIntoDiamond) {
  auto p = parse_src(R"(
    .globl _start
_start:
    beqz a0, iszero
    li a1, 1
    j done
iszero:
    li a1, 0
done:
    li a7, 93
    ecall
)");
  Function* f = p.co->function_named("_start");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->blocks().size(), 4u);
  const Block* entry = f->entry_block();
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(has_edge(entry, EdgeType::Taken));
  EXPECT_TRUE(has_edge(entry, EdgeType::NotTaken));
}

TEST(Parse, BackwardBranchSplitsLoopHead) {
  auto p = parse_src(R"(
    .globl _start
_start:
    li t0, 10
loop:
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    ecall
)");
  Function* f = p.co->function_named("_start");
  ASSERT_NE(f, nullptr);
  // Blocks: entry (li), loop body, exit.
  EXPECT_EQ(f->blocks().size(), 3u);
  const auto loops = parse::find_loops(*f);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].blocks.size(), 1u);
  EXPECT_EQ(loops[0].backedge_sources.size(), 1u);
  EXPECT_EQ(loops[0].backedge_sources[0], loops[0].header);
}

TEST(Parse, CallCreatesInterproceduralEdgeAndFallthrough) {
  auto p = parse_src(R"(
    .globl _start
    .globl callee
_start:
    call callee
    li a7, 93
    ecall
callee:
    ret
)");
  Function* f = p.co->function_named("_start");
  Function* callee = p.co->function_named("callee");
  ASSERT_NE(f, nullptr);
  ASSERT_NE(callee, nullptr);
  const auto callers = blocks_with_edge(f, EdgeType::Call);
  ASSERT_EQ(callers.size(), 1u);
  EXPECT_EQ(edge_of(callers[0], EdgeType::Call)->target, callee->entry());
  EXPECT_TRUE(has_edge(callers[0], EdgeType::CallFallthrough));
  EXPECT_TRUE(f->callees().count(callee->entry()));
  EXPECT_EQ(f->stats().n_calls, 1u);
}

TEST(Parse, ReturnViaJalrRa) {
  auto p = parse_src(R"(
    .globl f
f:
    addi a0, a0, 1
    ret
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->stats().n_returns, 1u);
  EXPECT_FALSE(blocks_with_edge(f, EdgeType::Return).empty());
}

TEST(Parse, TailCallViaJalJump) {
  // A plain j to another function's entry is a tail call (paper §3.2.3).
  auto p = parse_src(R"(
    .globl f
    .globl g
f:
    addi a0, a0, 1
    j g
g:
    ret
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->stats().n_tail_calls, 1u);
  const auto tails = blocks_with_edge(f, EdgeType::TailCall);
  ASSERT_EQ(tails.size(), 1u);
  EXPECT_EQ(edge_of(tails[0], EdgeType::TailCall)->target,
            p.co->function_named("g")->entry());
}

TEST(Parse, TailCallViaAuipcJalrPseudo) {
  // The `tail` pseudo expands to auipc t1 + jalr x0, lo(t1): exactly the
  // multi-instruction sequence the paper says ParseAPI must fuse.
  auto p = parse_src(R"(
    .globl f
    .globl g
f:
    addi a0, a0, 1
    tail g
g:
    ret
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->stats().n_tail_calls, 1u);
  EXPECT_TRUE(f->callees().count(p.co->function_named("g")->entry()));
}

TEST(Parse, FarCallViaAuipcJalrIsACall) {
  auto p = parse_src(R"(
    .globl _start
    .globl far
_start:
    call far
    li a7, 93
    ecall
far:
    ret
)");
  Function* f = p.co->function_named("_start");
  ASSERT_NE(f, nullptr);
  // `call` expands to auipc ra + jalr ra: must classify as a call with a
  // resolved target, not an unresolved indirect jump.
  EXPECT_EQ(f->stats().n_calls, 1u);
  EXPECT_EQ(f->stats().n_unresolved, 0u);
  EXPECT_TRUE(f->callees().count(p.co->function_named("far")->entry()));
}

TEST(Parse, IntraFunctionIndirectJumpViaConstant) {
  // An auipc+jalr pair targeting a label in the same function must be an
  // unconditional Jump, not a call or tail call.
  auto p = parse_src(R"(
    .globl f
f:
    la t0, inside
    jr t0
    nop
inside:
    ret
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->stats().n_tail_calls, 0u);
  const auto jumps = blocks_with_edge(f, EdgeType::Jump);
  ASSERT_EQ(jumps.size(), 1u);
  ASSERT_NE(f->block_at(edge_of(jumps[0], EdgeType::Jump)->target), nullptr);
}

TEST(Parse, JumpTableResolved) {
  auto p = parse_src(R"(
    .rodata
    .align 3
table:
    .dword case0
    .dword case1
    .dword case2
    .dword case3
    .text
    .globl dispatch
dispatch:
    li t0, 4
    bgeu a0, t0, default
    slli t1, a0, 3
    la t2, table
    add t1, t1, t2
    ld t1, 0(t1)
    jr t1
case0: li a0, 10
       ret
case1: li a0, 20
       ret
case2: li a0, 30
       ret
case3: li a0, 40
       ret
default:
    li a0, 99
    ret
)");
  Function* f = p.co->function_named("dispatch");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->stats().n_jump_tables, 1u);
  const auto dispatchers = blocks_with_edge(f, EdgeType::IndirectJump);
  ASSERT_EQ(dispatchers.size(), 1u);
  unsigned n_indirect = 0;
  for (const auto& e : dispatchers[0]->succs())
    if (e.type == EdgeType::IndirectJump) ++n_indirect;
  EXPECT_EQ(n_indirect, 4u);  // the bound check caps the table at 4 entries
  // All four case blocks reached and parsed (each ends in a return).
  EXPECT_EQ(f->stats().n_returns, 5u);
}

TEST(Parse, UnresolvedIndirectCall) {
  // A function-pointer call through an argument register cannot resolve.
  auto p = parse_src(R"(
    .globl f
f:
    jalr ra, 0(a0)
    ret
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  // jalr with a link register is a call even when the target is unknown.
  EXPECT_EQ(f->stats().n_calls, 1u);
}

TEST(Parse, UnresolvedIndirectJump) {
  auto p = parse_src(R"(
    .globl f
f:
    jr a1
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->stats().n_unresolved, 1u);
}

TEST(Parse, FunctionDiscoveryThroughCallsOnly) {
  // helper has no symbol: it must be discovered via the call edge.
  assembler::Options aopts;
  auto st = assembler::assemble(R"(
    .globl _start
_start:
    call helper
    li a7, 93
    ecall
helper:
    ret
)", aopts);
  // Strip all symbols except _start to force traversal discovery.
  auto& syms = st.symbols();
  syms.erase(std::remove_if(syms.begin(), syms.end(),
                            [](const symtab::Symbol& s) {
                              return s.name != "_start";
                            }),
             syms.end());
  CodeObject co(st);
  co.parse();
  ASSERT_EQ(co.functions().size(), 2u);
  // The discovered function gets a synthetic name.
  bool found = false;
  for (const auto& [a, f] : co.functions())
    if (f->name().rfind("func_", 0) == 0) found = true;
  EXPECT_TRUE(found);
}

TEST(Parse, GapParsingFindsUnreferencedFunction) {
  // orphan is never called and has no symbol; gap parsing must find its
  // prologue (addi sp, sp, -16).
  auto st = assembler::assemble(R"(
    .globl _start
_start:
    li a7, 93
    ecall
orphan:
    addi sp, sp, -16
    sd ra, 8(sp)
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
)");
  auto& syms = st.symbols();
  syms.erase(std::remove_if(syms.begin(), syms.end(),
                            [](const symtab::Symbol& s) {
                              return s.name != "_start";
                            }),
             syms.end());
  CodeObject co(st);
  parse::ParseOptions opts;
  opts.gap_parsing = true;
  co.parse(opts);
  EXPECT_GE(co.functions().size(), 2u);

  parse::ParseOptions no_gaps;
  no_gaps.gap_parsing = false;
  CodeObject co2(st);
  co2.parse(no_gaps);
  EXPECT_EQ(co2.functions().size(), 1u);
}

TEST(Parse, PredecessorsRebuilt) {
  auto p = parse_src(R"(
    .globl f
f:
    beqz a0, a
    j b
a:  nop
b:  ret
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  // Block "b" has two predecessors: the jump block and fallthrough from a.
  unsigned max_preds = 0;
  for (const auto& [addr, blk] : f->blocks())
    max_preds = std::max(max_preds,
                         static_cast<unsigned>(blk->preds().size()));
  EXPECT_EQ(max_preds, 2u);
}

TEST(Parse, NestedLoops) {
  auto p = parse_src(R"(
    .globl f
f:
    li t0, 0          # i
outer:
    li t1, 0          # j
inner:
    addi t1, t1, 1
    li t3, 10
    blt t1, t3, inner
    addi t0, t0, 1
    li t3, 10
    blt t0, t3, outer
    ret
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  const auto loops = parse::find_loops(*f);
  ASSERT_EQ(loops.size(), 2u);
  // The outer loop strictly contains the inner one.
  const auto& a = loops[0].blocks.size() > loops[1].blocks.size() ? loops[0] : loops[1];
  const auto& b = loops[0].blocks.size() > loops[1].blocks.size() ? loops[1] : loops[0];
  for (std::uint64_t blk : b.blocks) EXPECT_TRUE(a.contains(blk));
  EXPECT_GT(a.blocks.size(), b.blocks.size());
}

TEST(Parse, DominatorsOfDiamond) {
  auto p = parse_src(R"(
    .globl f
f:
    beqz a0, l
    nop
    j m
l:  nop
m:  ret
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  const auto idom = parse::immediate_dominators(*f);
  // Every block's immediate dominator chain reaches the entry.
  for (const auto& [addr, blk] : f->blocks()) {
    if (!idom.count(addr)) continue;
    EXPECT_TRUE(parse::dominates(idom, f->entry(), addr));
  }
  // The join block is dominated by the entry but not by either arm.
  const Block* join = nullptr;
  for (const auto& [addr, blk] : f->blocks())
    if (blk->preds().size() == 2) join = blk.get();
  ASSERT_NE(join, nullptr);
  for (const Block* pred : join->preds())
    EXPECT_FALSE(parse::dominates(idom, pred->start(), join->start()));
}

TEST(Parse, ParallelMatchesSerial) {
  // Build a binary with many functions and compare serial vs parallel.
  std::string src = ".globl _start\n_start:\n";
  for (int i = 0; i < 40; ++i) src += "  call f" + std::to_string(i) + "\n";
  src += "  li a7, 93\n  ecall\n";
  for (int i = 0; i < 40; ++i) {
    src += ".globl f" + std::to_string(i) + "\nf" + std::to_string(i) + ":\n";
    src += "  addi sp, sp, -16\n  sd ra, 8(sp)\n";
    src += "  li t0, " + std::to_string(i) + "\n";
    src += "  beqz t0, f" + std::to_string(i) + "_done\n  nop\n";
    src += "f" + std::to_string(i) + "_done:\n";
    src += "  ld ra, 8(sp)\n  addi sp, sp, 16\n  ret\n";
  }
  auto st = assembler::assemble(src);

  CodeObject serial(st);
  parse::ParseOptions sopts;
  sopts.num_threads = 1;
  serial.parse(sopts);

  CodeObject par(st);
  parse::ParseOptions popts;
  popts.num_threads = 4;
  par.parse(popts);

  ASSERT_EQ(serial.functions().size(), par.functions().size());
  for (const auto& [entry, fs] : serial.functions()) {
    Function* fp = par.function_at(entry);
    ASSERT_NE(fp, nullptr);
    EXPECT_EQ(fs->blocks().size(), fp->blocks().size()) << fs->name();
    EXPECT_EQ(fs->stats().n_returns, fp->stats().n_returns);
    EXPECT_EQ(fs->callees(), fp->callees());
    for (const auto& [ba, bb] : fs->blocks()) {
      Block* other = fp->block_at(ba);
      ASSERT_NE(other, nullptr);
      EXPECT_EQ(bb->insns().size(), other->insns().size());
      EXPECT_EQ(bb->succs().size(), other->succs().size());
    }
  }
}

TEST(Parse, BlockSplittingOnLateDiscoveredTarget) {
  // The branch lands in the middle of what first parses as one block.
  auto p = parse_src(R"(
    .globl f
f:
    nop
    nop
mid:
    nop
    beqz a0, mid
    ret
)");
  Function* f = p.co->function_named("f");
  ASSERT_NE(f, nullptr);
  // `mid` must have become its own block.
  const auto* st_sym = p.st.find_symbol("mid");
  ASSERT_NE(st_sym, nullptr);
  EXPECT_NE(f->block_at(st_sym->value), nullptr);
}

TEST(Parse, StatsAggregate) {
  auto p = parse_src(R"(
    .globl _start
_start:
    call a
    call b
    li a7, 93
    ecall
a:  ret
b:  ret
)");
  const auto total = p.co->total_stats();
  EXPECT_EQ(total.n_calls, 2u);
  EXPECT_EQ(total.n_returns, 2u);
  EXPECT_GE(total.n_blocks, 5u);
  EXPECT_GE(total.n_insns, 8u);
}

}  // namespace
