// The observability tentpole's cross-check: an instrumentation-based block
// profiler (snippets bumping guest-memory counters) must agree *exactly*
// with the emulator's own per-PC "hardware" profile. A block's entry count
// is the pc-profile hit count at its start address, since the CFG splits
// blocks at every join point.
#include <gtest/gtest.h>

#include <string>

#include "assembler/assembler.hpp"
#include "obs/profiler.hpp"
#include "proccontrol/process.hpp"
#include "workloads/workloads.hpp"

namespace rvdyn {
namespace {

void expect_profiles_match(const std::string& source) {
  const symtab::Symtab bin = assembler::assemble(source, {});

  // Ground truth: run the *original* binary with the emulator-side per-PC
  // profile enabled (the debugger-surface view a perf tool would sample).
  auto truth = proccontrol::Process::launch(bin);
  truth->enable_pc_profile(true);
  const auto ev1 = truth->continue_run();
  ASSERT_EQ(ev1.kind, proccontrol::Event::Kind::Exited);
  const auto& pc_prof = truth->pc_profile();

  // Instrumented view: every block counted by an inserted snippet.
  obs::BlockProfiler profiler(bin);
  ASSERT_FALSE(profiler.counters().empty());
  auto proc = proccontrol::Process::launch(profiler.rewritten());
  proc->install_trap_table(profiler.trap_table());
  const auto ev2 = proc->continue_run();
  ASSERT_EQ(ev2.kind, proccontrol::Event::Kind::Exited);

  // Same program semantics under instrumentation.
  EXPECT_EQ(ev1.exit_code, ev2.exit_code);

  // Exact per-block agreement between the two profiles.
  std::uint64_t total = 0;
  for (const auto& [block, var] : profiler.counters()) {
    const std::uint64_t instrumented = proc->machine().memory().read(var.addr, 8);
    const auto it = pc_prof.find(block);
    const std::uint64_t emulated = it == pc_prof.end() ? 0 : it->second.hits;
    EXPECT_EQ(instrumented, emulated)
        << "block 0x" << std::hex << block << std::dec
        << ": instrumented=" << instrumented << " emulated=" << emulated;
    total += instrumented;
  }
  // The workload actually ran through instrumented code.
  EXPECT_GT(total, 0u);

  // The hot-block table is sorted and consistent with the raw counters.
  const auto hot = profiler.counts(proc->machine());
  ASSERT_FALSE(hot.empty());
  for (std::size_t i = 1; i < hot.size(); ++i)
    EXPECT_GE(hot[i - 1].count, hot[i].count);
  for (const auto& hb : hot)
    EXPECT_EQ(hb.count, profiler.count_of(proc->machine(), hb.block));
}

TEST(ObsProfiler, MatmulBlockFrequenciesMatchEmulator) {
  expect_profiles_match(workloads::matmul_program(6, 3));
}

TEST(ObsProfiler, SortBlockFrequenciesMatchEmulator) {
  expect_profiles_match(workloads::sort_program(48));
}

TEST(ObsProfiler, PcProfileCyclesSumToTotal) {
  const symtab::Symtab bin =
      assembler::assemble(workloads::fib_program(8), {});
  auto proc = proccontrol::Process::launch(bin);
  proc->enable_pc_profile(true);
  const auto ev = proc->continue_run();
  ASSERT_EQ(ev.kind, proccontrol::Event::Kind::Exited);

  std::uint64_t hits = 0, cycles = 0;
  for (const auto& [pc, c] : proc->pc_profile()) {
    hits += c.hits;
    cycles += c.cycles;
  }
  // Every retired instruction was attributed to some pc; every cycle the
  // core charged went to some instruction.
  EXPECT_EQ(hits, proc->machine().instret());
  EXPECT_EQ(cycles, proc->machine().cycles());

  proc->clear_pc_profile();
  EXPECT_TRUE(proc->pc_profile().empty());
}

}  // namespace
}  // namespace rvdyn
