// SymtabAPI tests: ELF model round-trips, malformed-input rejection,
// section/symbol queries, e_flags and .riscv.attributes handling, and the
// loadable-image invariants (offset ≡ vaddr mod page) the emulator's
// loader relies on.
#include <gtest/gtest.h>

#include <cstring>

#include "assembler/assembler.hpp"
#include "common/leb128.hpp"
#include "symtab/riscv_attrs.hpp"
#include "symtab/symtab.hpp"

namespace {

using namespace rvdyn;
using symtab::Symtab;

Symtab small_binary() {
  return assembler::assemble(R"(
    .data
counter: .dword 7
    .rodata
msg: .asciz "hi"
    .bss
buf: .zero 64
    .text
    .globl _start
    .globl helper
_start:
    call helper
    li a7, 93
    ecall
helper:
    ret
)");
}

TEST(Symtab, SectionsModelled) {
  const auto st = small_binary();
  ASSERT_NE(st.find_section(".text"), nullptr);
  ASSERT_NE(st.find_section(".data"), nullptr);
  ASSERT_NE(st.find_section(".rodata"), nullptr);
  ASSERT_NE(st.find_section(".bss"), nullptr);
  ASSERT_NE(st.find_section(".riscv.attributes"), nullptr);
  EXPECT_TRUE(st.find_section(".text")->is_code());
  EXPECT_FALSE(st.find_section(".data")->is_code());
  EXPECT_EQ(st.find_section(".bss")->type, symtab::SHT_NOBITS);
  EXPECT_GT(st.find_section(".bss")->size(), 0u);
}

TEST(Symtab, SymbolQueries) {
  const auto st = small_binary();
  const auto* start = st.find_symbol("_start");
  ASSERT_NE(start, nullptr);
  EXPECT_TRUE(start->is_function());
  EXPECT_EQ(start->value, st.entry);
  const auto* counter = st.find_symbol("counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_FALSE(counter->is_function());
  const auto funcs = st.function_symbols();
  ASSERT_EQ(funcs.size(), 2u);
  EXPECT_LE(funcs[0]->value, funcs[1]->value);  // sorted
}

TEST(Symtab, AddressQueries) {
  const auto st = small_binary();
  const auto* counter = st.find_symbol("counter");
  EXPECT_EQ(st.read_addr(counter->value, 8), std::optional<std::uint64_t>(7));
  EXPECT_TRUE(st.in_code(st.entry));
  EXPECT_FALSE(st.in_code(counter->value));
  EXPECT_EQ(st.read_addr(0xdead0000, 8), std::nullopt);
  // Reads crossing the end of a section fail.
  const auto* ro = st.find_section(".rodata");
  EXPECT_EQ(st.read_addr(ro->addr + ro->data.size() - 1, 8), std::nullopt);
}

TEST(Symtab, WriteProducesMappableImage) {
  const auto st = small_binary();
  const auto image = st.write();

  symtab::Elf64_Ehdr eh;
  std::memcpy(&eh, image.data(), sizeof(eh));
  EXPECT_EQ(eh.e_machine, symtab::EM_RISCV);
  EXPECT_EQ(eh.e_type, symtab::ET_EXEC);
  ASSERT_GT(eh.e_phnum, 0);

  // Every PT_LOAD: offset ≡ vaddr (mod 4096) and within the file.
  for (unsigned i = 0; i < eh.e_phnum; ++i) {
    symtab::Elf64_Phdr ph;
    std::memcpy(&ph, image.data() + eh.e_phoff + i * sizeof(ph), sizeof(ph));
    EXPECT_EQ(ph.p_type, symtab::PT_LOAD);
    EXPECT_EQ(ph.p_offset % 0x1000, ph.p_vaddr % 0x1000) << "segment " << i;
    if (ph.p_filesz > 0)  // offsets of zero-filesz (bss) segments are moot
      EXPECT_LE(ph.p_offset + ph.p_filesz, image.size());
    EXPECT_GE(ph.p_memsz, ph.p_filesz);
  }
}

TEST(Symtab, RoundTripPreservesEverything) {
  const auto st = small_binary();
  const auto st2 = Symtab::read(st.write());
  EXPECT_EQ(st2.entry, st.entry);
  EXPECT_EQ(st2.e_flags, st.e_flags);
  for (const char* name : {".text", ".data", ".rodata"}) {
    const auto* a = st.find_section(name);
    const auto* b = st2.find_section(name);
    ASSERT_NE(b, nullptr) << name;
    EXPECT_EQ(a->addr, b->addr);
    EXPECT_EQ(a->data, b->data);
    EXPECT_EQ(a->flags, b->flags);
  }
  EXPECT_EQ(st2.find_section(".bss")->size(), st.find_section(".bss")->size());
  // Same named symbols with same values.
  for (const auto& sym : st.symbols()) {
    const auto* other = st2.find_symbol(sym.name);
    ASSERT_NE(other, nullptr) << sym.name;
    EXPECT_EQ(other->value, sym.value);
    EXPECT_EQ(other->type, sym.type);
  }
}

// ---- malformed input rejection ----

TEST(SymtabRobustness, RejectsGarbage) {
  std::vector<std::uint8_t> junk(200, 0x5a);
  EXPECT_THROW(Symtab::read(junk), Error);
}

TEST(SymtabRobustness, RejectsTruncated) {
  const auto image = small_binary().write();
  std::vector<std::uint8_t> tiny(image.begin(), image.begin() + 20);
  EXPECT_THROW(Symtab::read(tiny), Error);
}

TEST(SymtabRobustness, RejectsWrongClass) {
  auto image = small_binary().write();
  image[4] = 1;  // ELFCLASS32
  EXPECT_THROW(Symtab::read(image), Error);
}

TEST(SymtabRobustness, RejectsBigEndian) {
  auto image = small_binary().write();
  image[5] = 2;  // ELFDATA2MSB
  EXPECT_THROW(Symtab::read(image), Error);
}

TEST(SymtabRobustness, RejectsOutOfBoundsSectionHeaders) {
  auto image = small_binary().write();
  symtab::Elf64_Ehdr eh;
  std::memcpy(&eh, image.data(), sizeof(eh));
  eh.e_shoff = image.size() + 1000;
  std::memcpy(image.data(), &eh, sizeof(eh));
  EXPECT_THROW(Symtab::read(image), Error);
}

TEST(SymtabRobustness, RejectsBadShstrndx) {
  auto image = small_binary().write();
  symtab::Elf64_Ehdr eh;
  std::memcpy(&eh, image.data(), sizeof(eh));
  eh.e_shstrndx = 999;
  std::memcpy(image.data(), &eh, sizeof(eh));
  EXPECT_THROW(Symtab::read(image), Error);
}

TEST(SymtabRobustness, SurvivesTruncatedAttributes) {
  // Arbitrary prefixes of a valid attributes payload must not crash the
  // parser (it may return nullopt).
  const auto payload = symtab::build_riscv_attributes("rv64imafdc_zicsr");
  for (std::size_t len = 0; len <= payload.size(); ++len) {
    std::vector<std::uint8_t> prefix(payload.begin(), payload.begin() + len);
    const auto result = symtab::parse_riscv_arch_attribute(prefix);
    if (len == payload.size()) {
      EXPECT_TRUE(result.has_value());
    }
  }
}

// ---- e_flags / attributes interplay ----

TEST(SymtabFlags, EFlagsTrackExtensions) {
  assembler::Options opts;
  opts.extensions = isa::ExtensionSet::rv64g();  // no C
  const auto st = assembler::assemble(".globl _start\n_start: ecall\n", opts);
  EXPECT_EQ(st.e_flags & symtab::EF_RISCV_RVC, 0u);
  EXPECT_EQ(st.e_flags & symtab::EF_RISCV_FLOAT_ABI_MASK,
            symtab::EF_RISCV_FLOAT_ABI_DOUBLE);

  assembler::Options imac;
  imac.extensions = isa::parse_isa_string("rv64imac_zicsr_zifencei");
  const auto st2 = assembler::assemble(".globl _start\n_start: ecall\n", imac);
  EXPECT_NE(st2.e_flags & symtab::EF_RISCV_RVC, 0u);
  EXPECT_EQ(st2.e_flags & symtab::EF_RISCV_FLOAT_ABI_MASK,
            symtab::EF_RISCV_FLOAT_ABI_SOFT);
}

TEST(SymtabFlags, AttributesPreferredOverEFlags) {
  auto st = small_binary();
  // Attributes say rv64imac (no D); e_flags claim double-float ABI. The
  // attributes section must win (paper §3.2.1's priority).
  auto* attrs = st.find_section(".riscv.attributes");
  ASSERT_NE(attrs, nullptr);
  attrs->data = symtab::build_riscv_attributes("rv64imac_zicsr");
  const auto exts = st.extensions();
  EXPECT_TRUE(exts.has(isa::Extension::M));
  EXPECT_FALSE(exts.has(isa::Extension::D));
}

TEST(SymtabFlags, SetExtensionsWritesBothSources) {
  auto st = small_binary();
  st.set_extensions(isa::parse_isa_string("rv64imafd_zicsr_zifencei"));
  EXPECT_EQ(st.e_flags & symtab::EF_RISCV_RVC, 0u);
  const auto* attrs = st.find_section(".riscv.attributes");
  const auto arch = symtab::parse_riscv_arch_attribute(attrs->data);
  ASSERT_TRUE(arch.has_value());
  EXPECT_FALSE(isa::parse_isa_string(*arch).has(isa::Extension::C));
  EXPECT_TRUE(isa::parse_isa_string(*arch).has(isa::Extension::D));
}

// ---- ULEB128 primitive ----

TEST(Leb128, RoundTrip) {
  const std::uint64_t probes[] = {0,   1,    127,        128,
                                  300, 1u << 20, ~0ULL >> 1, ~0ULL};
  for (const std::uint64_t v : probes) {
    std::vector<std::uint8_t> buf;
    uleb128_write(buf, v);
    std::size_t off = 0;
    EXPECT_EQ(uleb128_read(buf.data(), buf.size(), &off), v);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(Leb128, TruncatedReadStopsAtEnd) {
  std::vector<std::uint8_t> buf;
  uleb128_write(buf, 1u << 20);
  std::size_t off = 0;
  uleb128_read(buf.data(), buf.size() - 1, &off);  // truncated
  EXPECT_EQ(off, buf.size() - 1);
}

TEST(Symtab, SectionContainingFindsAllocOnly) {
  auto st = small_binary();
  // .riscv.attributes is not allocatable: never returned by address.
  const auto* attrs = st.find_section(".riscv.attributes");
  ASSERT_NE(attrs, nullptr);
  EXPECT_FALSE(attrs->is_alloc());
  const auto* text = st.find_section(".text");
  EXPECT_EQ(st.section_containing(text->addr), text);
  EXPECT_EQ(st.section_containing(text->addr + text->data.size() - 1), text);
  EXPECT_EQ(st.section_containing(text->addr + text->data.size() + 0x100000),
            nullptr);
}

}  // namespace
