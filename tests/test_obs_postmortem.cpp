// Postmortem-report tests: when a guest run stops somewhere it should not,
// postmortem_report() must assemble the stop reason, faulting-instruction
// disassembly, register file, stack walk, block-trace tail, and trace-sink
// tail into one deterministic text report.
#include <gtest/gtest.h>

#include <string>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"
#include "parse/cfg.hpp"
#include "proccontrol/process.hpp"

namespace rvdyn {
namespace {

// Two-deep call chain ending in an ebreak, with proper sp-height frames so
// the walk recovers _start -> outer -> boom.
constexpr const char* kTrapChain = R"(
    .globl _start
    .globl outer
    .globl boom
_start:
    call outer
    li a7, 93
    li a0, 0
    ecall
outer:
    addi sp, sp, -16
    sd ra, 8(sp)
    call boom
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
boom:
    addi sp, sp, -16
    sd ra, 8(sp)
    li a1, 12345
    ebreak
)";

TEST(Postmortem, BreakpointReportHasAllSections) {
  const auto bin = assembler::assemble(kTrapChain);
  parse::CodeObject co(bin);
  co.parse();
  emu::Machine m;
  m.enable_block_trace(true);
  m.load(bin);
  const auto r = m.run(1'000'000);
  ASSERT_EQ(r, emu::StopReason::Breakpoint);

  const std::string report = obs::postmortem_report(m, co, r);
  // Header: stop reason, symbolized pc, counters.
  EXPECT_NE(report.find("=== rvdyn postmortem ==="), std::string::npos);
  EXPECT_NE(report.find("breakpoint (ebreak)"), std::string::npos);
  EXPECT_NE(report.find("boom"), std::string::npos);
  EXPECT_NE(report.find("instret: "), std::string::npos);
  // Faulting instruction decodes to the ebreak.
  EXPECT_NE(report.find("--- faulting instruction ---"), std::string::npos);
  EXPECT_NE(report.find("ebreak"), std::string::npos);
  // Register file: all 32 registers, ABI + arch names; a1 holds the
  // sentinel value written just before the trap.
  EXPECT_NE(report.find("--- registers ---"), std::string::npos);
  EXPECT_NE(report.find("zero(x0 )"), std::string::npos);
  EXPECT_NE(report.find("t6  (x31)"), std::string::npos);
  char a1line[32];
  std::snprintf(a1line, sizeof(a1line), "%016llx",
                static_cast<unsigned long long>(12345));
  EXPECT_NE(report.find(a1line), std::string::npos);
  // Stack walk recovers the full chain.
  EXPECT_NE(report.find("--- stack ---"), std::string::npos);
  const auto stack_pos = report.find("--- stack ---");
  const auto blocks_pos = report.find("--- last executed blocks");
  ASSERT_NE(blocks_pos, std::string::npos);
  const std::string stack = report.substr(stack_pos, blocks_pos - stack_pos);
  EXPECT_NE(stack.find("boom"), std::string::npos);
  EXPECT_NE(stack.find("outer"), std::string::npos);
  EXPECT_NE(stack.find("_start"), std::string::npos);
  // Block trace was on: the tail lists executed blocks with instret stamps.
#if RVDYN_OBS_ENABLED
  EXPECT_NE(report.find("[instret "), std::string::npos);
#else
  EXPECT_NE(report.find("<empty>"), std::string::npos);
#endif
}

TEST(Postmortem, BadFetchReportsUnmappedPc) {
  const auto bin = assembler::assemble(R"(
    .globl _start
_start:
    li t0, 0x40
    jr t0
)");
  parse::CodeObject co(bin);
  co.parse();
  emu::Machine m;
  m.load(bin);
  const auto r = m.run(1'000'000);
  ASSERT_EQ(r, emu::StopReason::BadFetch);

  const std::string report = obs::postmortem_report(m, co, r);
  EXPECT_NE(report.find("bad fetch (pc unmapped)"), std::string::npos);
  EXPECT_NE(report.find("<pc unmapped: no bytes to decode>"),
            std::string::npos);
  // Block trace was never enabled: the report says how to turn it on.
  EXPECT_NE(report.find("block trace disabled"), std::string::npos);
}

TEST(Postmortem, ProcessOverloadUsesLastStop) {
  const auto bin = assembler::assemble(kTrapChain);
  parse::CodeObject co(bin);
  co.parse();
  auto proc = proccontrol::Process::launch(bin);
  const auto ev = proc->continue_run();
  ASSERT_EQ(static_cast<int>(ev.kind),
            static_cast<int>(proccontrol::Event::Kind::Stopped));

  const std::string report = obs::postmortem_report(*proc, co);
  EXPECT_NE(report.find("breakpoint (ebreak)"), std::string::npos);
  EXPECT_NE(report.find("boom"), std::string::npos);
}

TEST(Postmortem, TraceSinkTailAppearsWhenEnabled) {
  const auto bin = assembler::assemble(kTrapChain);
  parse::CodeObject co(bin);
  co.parse();
  emu::Machine m;
  m.load(bin);
  const auto r = m.run(1'000'000);
  ASSERT_EQ(r, emu::StopReason::Breakpoint);

  obs::PostmortemOptions opts;
  opts.include_trace_events = false;
  const std::string quiet = obs::postmortem_report(m, co, r, opts);
  EXPECT_EQ(quiet.find("--- recent trace events ---"), std::string::npos);

  obs::TraceSink::instance().clear();
  obs::TraceSink::instance().set_enabled(true);
  obs::TraceSink::instance().instant("test.postmortem.marker");
  const std::string report = obs::postmortem_report(m, co, r);
  obs::TraceSink::instance().set_enabled(false);
  EXPECT_NE(report.find("--- recent trace events ---"), std::string::npos);
#if RVDYN_OBS_ENABLED
  EXPECT_NE(report.find("test.postmortem.marker"), std::string::npos);
#endif
}

}  // namespace
}  // namespace rvdyn
