# Builds the tree once with RVDYN_OBS=OFF and runs a representative slice
# of the test suite, proving the no-op observability path compiles and the
# toolkits behave identically without the hooks. Run via
#   cmake -P tests/obs_off_check.cmake
# (registered as the `obs_off_build` ctest when the main build is ON).
#
# Variables (all optional, -D before -P):
#   SOURCE_DIR  repo root (default: parent of this script)
#   BINARY_DIR  nested build dir (default: ${SOURCE_DIR}/build-obs-off)
#   JOBS        parallel build jobs (default: 4)

if(NOT SOURCE_DIR)
  get_filename_component(SOURCE_DIR ${CMAKE_CURRENT_LIST_DIR} DIRECTORY)
endif()
if(NOT BINARY_DIR)
  set(BINARY_DIR ${SOURCE_DIR}/build-obs-off)
endif()
if(NOT JOBS)
  set(JOBS 4)
endif()

message(STATUS "obs-off check: configuring ${BINARY_DIR} with -DRVDYN_OBS=OFF")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DRVDYN_OBS=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs-off check: configure failed")
endif()

# A slice spanning every layer that hosts hook sites: decoder, emulator
# caches, parser, patcher, end-to-end pipeline, and the obs unit tests
# themselves (whose ON-only assertions are #if-gated).
set(targets
  test_decode_fastpath
  test_emu_cache
  test_parse
  test_patch
  test_obs
  test_obs_export
  test_obs_pipeline
  test_obs_postmortem
  test_obs_profiler
  test_obs_sampler)

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} -j ${JOBS} --target ${targets}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "obs-off check: build failed with RVDYN_OBS=OFF")
endif()

foreach(t ${targets})
  message(STATUS "obs-off check: running ${t}")
  execute_process(
    COMMAND ${BINARY_DIR}/tests/${t}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "obs-off check: ${t} failed in the OFF build")
  endif()
endforeach()

message(STATUS "obs-off check: all tests pass with RVDYN_OBS=OFF")
