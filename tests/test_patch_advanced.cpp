// Advanced PatchAPI tests: instruction-level points, long-branch
// relaxation for oversized snippets, stacked (rewrite-the-rewritten)
// instrumentation, and dynamic-point instrumentation idioms built from
// operand access information.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "proccontrol/process.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using codegen::increment;
using emu::Machine;
using emu::StopReason;
using patch::BinaryEditor;
using patch::PointType;

int run_binary(const symtab::Symtab& bin, Machine* out = nullptr,
               std::uint64_t max_steps = 400'000'000) {
  Machine local;
  Machine& m = out ? *out : local;
  m.load(bin);
  EXPECT_EQ(static_cast<int>(m.run(max_steps)),
            static_cast<int>(StopReason::Exited))
      << "stopped at pc=0x" << std::hex << m.stop_pc();
  return m.exit_code();
}

TEST(PatchInsn, CountOneSpecificInstruction) {
  // Count executions of the fmadd.d in matmul's inner loop: exactly n^3.
  const int n = 12;
  auto st = assembler::assemble(workloads::matmul_program(n, 1));
  BinaryEditor editor(st);
  const auto* f = editor.code().function_named("matmul");
  ASSERT_NE(f, nullptr);

  std::uint64_t fmadd_addr = 0;
  for (const auto& [a, b] : f->blocks())
    for (const auto& pi : b->insns())
      if (pi.insn.mnemonic() == isa::Mnemonic::fmadd_d) fmadd_addr = pi.addr;
  ASSERT_NE(fmadd_addr, 0u);

  const auto c = editor.alloc_var("fmadds");
  editor.insert(patch::insn_point(*f, fmadd_addr), increment(c));
  const auto rewritten = editor.commit();

  Machine m;
  const int base_exit = run_binary(st);
  EXPECT_EQ(run_binary(rewritten, &m), base_exit);
  EXPECT_EQ(m.memory().read(c.addr, 8),
            static_cast<std::uint64_t>(n) * n * n);
}

TEST(PatchInsn, InsnPointRejectsNonBoundary) {
  auto st = assembler::assemble(workloads::fib_program(5));
  BinaryEditor editor(st);
  const auto* f = editor.code().function_named("fib");
  EXPECT_THROW(patch::insn_point(*f, f->entry() + 1), Error);
  EXPECT_THROW(patch::insn_point(*f, 0xdead0000), Error);
}

TEST(PatchInsn, FindAllInstructionPoints) {
  auto st = assembler::assemble(workloads::fib_program(5));
  parse::CodeObject co(st);
  co.parse();
  const auto* f = co.function_named("fib");
  const auto points = patch::find_points(*f, PointType::Instruction);
  EXPECT_EQ(points.size(), static_cast<std::size_t>(f->stats().n_insns));
}

TEST(PatchInsn, MemoryWatchIdiom) {
  // Instrument the store in the loop and record the base register's value
  // (the effective address minus static displacement) into a "last store
  // address" variable — memory tracing from operand access info.
  const char* src = R"(
    .bss
buf: .zero 256
    .text
    .globl _start
_start:
    la s0, buf
    li s1, 0
    li s2, 8
sloop:
    slli t0, s1, 3
    add t1, s0, t0
    sd s1, 0(t1)
    addi s1, s1, 1
    blt s1, s2, sloop
    li a0, 0
    li a7, 93
    ecall
)";
  auto st = assembler::assemble(src);
  BinaryEditor editor(st);
  const auto* f = editor.code().function_named("_start");
  ASSERT_NE(f, nullptr);

  std::uint64_t store_addr = 0;
  isa::Reg base{};
  std::int64_t disp = 0;
  for (const auto& [a, b] : f->blocks()) {
    for (const auto& pi : b->insns()) {
      if (pi.insn.mnemonic() != isa::Mnemonic::sd) continue;
      store_addr = pi.addr;
      base = pi.insn.operand(1).reg;
      disp = pi.insn.operand(1).imm;
    }
  }
  ASSERT_NE(store_addr, 0u);

  // last_addr = base_reg + disp, computed before the store each time.
  const auto last_addr = editor.alloc_var("last_addr");
  editor.insert(patch::insn_point(*f, store_addr),
                codegen::assign(last_addr,
                                codegen::binary(codegen::BinOp::Add,
                                                codegen::read_reg(base),
                                                codegen::constant(disp))));
  const auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 0);
  const auto* buf_sym = st.find_symbol("buf");
  ASSERT_NE(buf_sym, nullptr);
  // The last store in the loop hits buf + 7*8.
  EXPECT_EQ(m.memory().read(last_addr.addr, 8), buf_sym->value + 7 * 8);
}

TEST(PatchRelax, HugeSnippetTriggersLongBranches) {
  // A snippet of ~600 statements makes the relocated function exceed the
  // conditional branch's ±4KiB reach; the rewriter must switch to the
  // inverted-branch + jal long form, and behaviour must be preserved.
  const char* src = R"(
    .globl _start
    .globl looper
_start:
    call looper
    li a7, 93
    ecall
looper:
    li t0, 0
    li t1, 25
lloop:
    addi t0, t0, 1
    blt t0, t1, lloop
    mv a0, t0
    ret
)";
  auto st = assembler::assemble(src);
  const int base_exit = run_binary(st);
  ASSERT_EQ(base_exit, 25);

  BinaryEditor editor(st);
  const auto big = editor.alloc_var("big");
  std::vector<codegen::SnippetPtr> stmts;
  for (int i = 0; i < 600; ++i) stmts.push_back(increment(big));
  const auto* f = editor.code().function_named("looper");
  // Attach the huge snippet to the loop body block (executes 25 times).
  editor.insert_at(f->entry(), PointType::LoopBackedge,
                   codegen::sequence(stmts));
  const auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 25);
  // 24 back edges, 600 increments each.
  EXPECT_EQ(m.memory().read(big.addr, 8), 24u * 600u);
}

TEST(PatchStacked, RewriteTheRewrittenBinary) {
  // Instrument, then instrument the result again with a second editor:
  // both counters must observe the full execution.
  auto st = assembler::assemble(workloads::call_churn_program(30));
  const int base_exit = run_binary(st);

  BinaryEditor first(st);
  const auto c1 = first.alloc_var("first");
  first.insert_at(first.code().function_named("wrapper")->entry(),
                  PointType::FuncEntry, increment(c1));
  const auto once = first.commit();

  // Round-trip through the on-disk form, as a real tool chain would.
  const auto reloaded = symtab::Symtab::read(once.write());
  BinaryEditor second(reloaded);
  // The wrapper symbol still points at the (now springboarded) original
  // entry; the second rewrite relocates the springboard.
  const auto* wrapper2 = second.code().function_named("wrapper");
  ASSERT_NE(wrapper2, nullptr);
  const auto c2 = second.alloc_var("second");
  second.insert_at(wrapper2->entry(), PointType::FuncEntry, increment(c2));
  const auto twice = second.commit();

  // The 4-byte springboard block from the first rewrite cannot hold an
  // 8-byte far jump, so the second rewrite's entry patch degrades to a
  // trap — run under the trap-aware ProcControl runtime.
  auto proc = proccontrol::Process::launch(twice);
  proc->install_trap_table(second.trap_table());
  const auto ev = proc->continue_run();
  ASSERT_EQ(static_cast<int>(ev.kind),
            static_cast<int>(proccontrol::Event::Kind::Exited));
  EXPECT_EQ(ev.exit_code, base_exit);
  EXPECT_EQ(proc->read_mem(c1.addr, 8), 30u);
  EXPECT_EQ(proc->read_mem(c2.addr, 8), 30u);
}

TEST(PatchInsn, InstructionAndBlockPointsCompose) {
  // Both point kinds at overlapping locations run, in a defined order
  // (block-entry snippets first, then the instruction snippet).
  auto st = assembler::assemble(workloads::call_churn_program(10));
  BinaryEditor editor(st);
  const auto* leaf = editor.code().function_named("leaf");
  ASSERT_NE(leaf, nullptr);
  const auto a = editor.alloc_var("a");
  const auto b = editor.alloc_var("b");
  editor.insert_at(leaf->entry(), PointType::BlockEntry, increment(a));
  editor.insert(patch::insn_point(*leaf, leaf->entry()),
                codegen::assign(b, codegen::binary(codegen::BinOp::Mul,
                                                   codegen::var_expr(a),
                                                   codegen::constant(2))));
  const auto rewritten = editor.commit();
  Machine m;
  run_binary(rewritten, &m);
  EXPECT_EQ(m.memory().read(a.addr, 8), 10u);
  EXPECT_EQ(m.memory().read(b.addr, 8), 20u);  // b follows a's update
}

}  // namespace
