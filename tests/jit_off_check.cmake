# Builds the tree once with -DRVDYN_JIT=OFF and runs the emulator, JIT and
# oracle suites, proving the tier compiles out cleanly: the Machine API
# shrinks to the interpreter, the JIT tests reduce to their compiled-out
# stubs, and run_jit_diff reports jit_available=false instead of lying.
# Run via
#   cmake -P tests/jit_off_check.cmake
# (registered as the `jit_off_build` ctest when the main build is ON).
#
# Variables (all optional, -D before -P):
#   SOURCE_DIR  repo root (default: parent of this script)
#   BINARY_DIR  nested build dir (default: ${SOURCE_DIR}/build-jit-off)
#   JOBS        parallel build jobs (default: 4)

if(NOT SOURCE_DIR)
  get_filename_component(SOURCE_DIR ${CMAKE_CURRENT_LIST_DIR} DIRECTORY)
endif()
if(NOT BINARY_DIR)
  set(BINARY_DIR ${SOURCE_DIR}/build-jit-off)
endif()
if(NOT JOBS)
  set(JOBS 4)
endif()

message(STATUS "jit-off check: configuring ${BINARY_DIR} with -DRVDYN_JIT=OFF")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DRVDYN_JIT=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "jit-off check: configure failed")
endif()

# Everything that touches the tier or its absence: the emulator core and
# cache suites (interpreter-only now), the JIT suites' compiled-out stubs,
# the differential oracle, and the workload substrate.
set(targets
  test_emu
  test_emu_cache
  test_jit
  test_jit_invalidate
  test_check_jit
  test_workloads)

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} -j ${JOBS} --target ${targets}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "jit-off check: build failed with RVDYN_JIT=OFF")
endif()

foreach(t ${targets})
  message(STATUS "jit-off check: running ${t}")
  execute_process(
    COMMAND ${BINARY_DIR}/tests/${t}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "jit-off check: ${t} failed in the OFF build")
  endif()
endforeach()

message(STATUS "jit-off check: all tests pass with RVDYN_JIT=OFF")
