// Assembler-substrate feature tests: directives, pseudo-instruction
// expansions (verified by executing them), alignment, string escapes,
// sections and error reporting.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "isa/decoder.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;

int run_exit(const std::string& src) {
  Machine m;
  m.load(assembler::assemble(src));
  EXPECT_EQ(static_cast<int>(m.run(1'000'000)),
            static_cast<int>(StopReason::Exited));
  return m.exit_code();
}

std::string wrap(const std::string& body) {
  return ".globl _start\n_start:\n" + body + "  li a7, 93\n  ecall\n";
}

// ---- pseudo-instruction semantics, executed ----

TEST(AsmPseudo, NotNegSeqz) {
  EXPECT_EQ(run_exit(wrap(R"(
    li t0, 0x0f
    not t1, t0          # ~0x0f
    andi t1, t1, 0xf0   # 0xf0
    li t2, 5
    neg t3, t2          # -5
    add t3, t3, t2      # 0
    seqz t3, t3         # 1
    add a0, t1, t3      # 0xf1 = 241
    andi a0, a0, 255
)")), 241);
}

TEST(AsmPseudo, SnezSltzSgtz) {
  EXPECT_EQ(run_exit(wrap(R"(
    li t0, -7
    sltz t1, t0         # 1
    sgtz t2, t0         # 0
    li t3, 9
    snez t4, t3         # 1
    sgtz t5, t3         # 1
    add a0, t1, t2
    add a0, a0, t4
    add a0, a0, t5      # 3
)")), 3);
}

TEST(AsmPseudo, SextWAndNegw) {
  EXPECT_EQ(run_exit(wrap(R"(
    li t0, 0xffffffff
    sext.w t1, t0       # -1
    li t2, 1
    add t1, t1, t2      # 0
    seqz a0, t1         # 1
    li t3, 3
    negw t4, t3         # -3 (sext32)
    add t4, t4, t3      # 0
    seqz t4, t4
    add a0, a0, t4      # 2
)")), 2);
}

TEST(AsmPseudo, SwappedOperandBranches) {
  // bgt/ble/bgtu/bleu are operand-swapped blt/bge forms.
  EXPECT_EQ(run_exit(wrap(R"(
    li t0, 5
    li t1, 3
    li a0, 0
    bgt t0, t1, g1      # taken: 5 > 3
    j done1
g1: addi a0, a0, 1
done1:
    ble t1, t0, g2      # taken: 3 <= 5
    j done2
g2: addi a0, a0, 1
done2:
    li t2, -1           # unsigned max
    bgtu t2, t0, g3     # taken
    j done3
g3: addi a0, a0, 1
done3:
    bleu t0, t2, g4     # taken
    j done4
g4: addi a0, a0, 1
done4:
)")), 4);
}

TEST(AsmPseudo, JalrForms) {
  EXPECT_EQ(run_exit(wrap(R"(
    la t0, helper
    jalr t0             # one-operand form: link in ra
    la t1, helper
    jalr ra, 0(t1)      # offset form
    j after
helper:
    addi a0, a0, 21
    ret
after:
)")), 42);
}

TEST(AsmPseudo, CsrPseudos) {
  EXPECT_EQ(run_exit(wrap(R"(
    rdcycle t0
    rdinstret t1
    csrr t2, cycle
    sltu a0, x0, t2     # cycle counter nonzero
)")), 1);
}

TEST(AsmPseudo, FpPseudos) {
  EXPECT_EQ(run_exit(wrap(R"(
    li t0, -2
    fcvt.d.l fa0, t0    # -2.0
    fabs.d fa1, fa0     # 2.0
    fneg.d fa2, fa1     # -2.0
    fmv.d fa3, fa2
    fadd.d fa4, fa1, fa3  # 0.0
    fcvt.l.d t1, fa4
    seqz a0, t1
)")), 1);
}

// ---- directives ----

TEST(AsmDirectives, AlignAndBalign) {
  const auto st = assembler::assemble(R"(
    .data
a:  .byte 1
    .align 3
b:  .dword 2
    .balign 16
c:  .dword 3
)");
  const auto* a = st.find_symbol("a");
  const auto* b = st.find_symbol("b");
  const auto* c = st.find_symbol("c");
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(b->value % 8, 0u);
  EXPECT_EQ(c->value % 16, 0u);
  EXPECT_EQ(st.read_addr(b->value, 8), std::optional<std::uint64_t>(2));
  EXPECT_EQ(st.read_addr(c->value, 8), std::optional<std::uint64_t>(3));
}

TEST(AsmDirectives, StringEscapes) {
  const auto st = assembler::assemble(R"(
    .rodata
s:  .asciz "a\tb\nc\"d\\e"
    .text
    .globl _start
_start:
    li a7, 93
    ecall
)");
  const auto* s = st.find_symbol("s");
  ASSERT_NE(s, nullptr);
  const char expected[] = "a\tb\nc\"d\\e";
  for (std::size_t i = 0; i < sizeof(expected); ++i)
    EXPECT_EQ(st.read_addr(s->value + i, 1),
              std::optional<std::uint64_t>(
                  static_cast<std::uint8_t>(expected[i])))
        << i;
}

TEST(AsmDirectives, DataCellWidths) {
  const auto st = assembler::assemble(R"(
    .data
v:  .byte 0x11, 0x22
    .half 0x3344
    .word 0x55667788
    .quad 0x99aabbccddeeff00
)");
  const auto* v = st.find_symbol("v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(st.read_addr(v->value, 1), std::optional<std::uint64_t>(0x11));
  EXPECT_EQ(st.read_addr(v->value + 1, 1), std::optional<std::uint64_t>(0x22));
  EXPECT_EQ(st.read_addr(v->value + 2, 2),
            std::optional<std::uint64_t>(0x3344));
  EXPECT_EQ(st.read_addr(v->value + 4, 4),
            std::optional<std::uint64_t>(0x55667788));
  EXPECT_EQ(st.read_addr(v->value + 8, 8),
            std::optional<std::uint64_t>(0x99aabbccddeeff00ULL));
}

TEST(AsmDirectives, WordSizedLabelCell) {
  const auto st = assembler::assemble(R"(
    .rodata
ptr32: .word target
    .text
    .globl _start
_start:
target:
    li a7, 93
    ecall
)");
  const auto* ptr = st.find_symbol("ptr32");
  const auto* tgt = st.find_symbol("target");
  ASSERT_TRUE(ptr && tgt);
  EXPECT_EQ(st.read_addr(ptr->value, 4),
            std::optional<std::uint64_t>(tgt->value & 0xffffffff));
}

TEST(AsmDirectives, SectionSwitchingPreservesCursor) {
  // Interleaved section switches must append, not restart.
  const auto st = assembler::assemble(R"(
    .data
d1: .dword 1
    .text
    .globl _start
_start:
    li a7, 93
    ecall
    .data
d2: .dword 2
)");
  const auto* d1 = st.find_symbol("d1");
  const auto* d2 = st.find_symbol("d2");
  ASSERT_TRUE(d1 && d2);
  EXPECT_EQ(d2->value, d1->value + 8);
}

TEST(AsmDirectives, LabelArithmetic) {
  EXPECT_EQ(run_exit(R"(
    .rodata
    .align 3
arr: .dword 10, 20, 30
    .text
    .globl _start
_start:
    la t0, arr+16      # &arr[2]
    ld a0, 0(t0)       # 30
    li a7, 93
    ecall
)"), 30);
}

// ---- errors ----

TEST(AsmErrors, Reported) {
  EXPECT_THROW(assembler::assemble("  addi a0\n"), Error);       // operands
  EXPECT_THROW(assembler::assemble("  addi a0, a1, 99999\n"), Error);
  EXPECT_THROW(assembler::assemble("x: .dword 1\nx: .dword 2\n"), Error);
  EXPECT_THROW(assembler::assemble(".data\n  addi a0, a0, 1\n"), Error);
  EXPECT_THROW(assembler::assemble("  ld a0, nope\n"), Error);
  EXPECT_THROW(assembler::assemble("  csrr a0, notacsr\n"), Error);
}

TEST(AsmErrors, BranchOutOfRangeDiagnosed) {
  // A conditional branch across >4KiB of code cannot encode.
  std::string src = ".globl _start\n_start:\n  beqz a0, far\n";
  for (int i = 0; i < 2000; ++i) src += "  .option norvc\n  nop\n";
  src += "far:\n  li a7, 93\n  ecall\n";
  EXPECT_THROW(assembler::assemble(src), Error);
}

}  // namespace
