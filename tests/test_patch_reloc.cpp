// Relocation-engine tests: the pass-based widget pipeline (lower -> weave
// -> rvc -> relax -> emit), the AddressSpace backends, and the behaviors
// the rewrite must preserve bit-exactly on the emulator — instrumentation
// at RVC compressed branch sites, snippet ordering, edge/backedge
// trampolines, tail-call exits, and the branch-reach relaxation that
// replaced the old pessimistic size estimate.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "proccontrol/process.hpp"

namespace {

using namespace rvdyn;
using codegen::increment;
using emu::Machine;
using emu::StopReason;
using patch::BinaryEditor;
using patch::PointType;

int run_binary(const symtab::Symtab& bin, Machine* out_machine = nullptr,
               std::uint64_t max_steps = 100'000'000) {
  Machine local;
  Machine& m = out_machine ? *out_machine : local;
  m.load(bin);
  const StopReason r = m.run(max_steps);
  EXPECT_EQ(static_cast<int>(r), static_cast<int>(StopReason::Exited))
      << "stopped at pc=0x" << std::hex << m.stop_pc();
  return m.exit_code();
}

// Run an instrumented binary through a Process so trap springboards (if
// any) are redirected by the debugger runtime.
int run_process(proccontrol::Process& proc) {
  const auto ev = proc.continue_run();
  EXPECT_EQ(static_cast<int>(ev.kind),
            static_cast<int>(proccontrol::Event::Kind::Exited));
  return ev.exit_code;
}

// ---- satellite: tail calls are function exits -----------------------------

TEST(PatchReloc, TailCallCountsAsFuncExit) {
  // `f` never returns directly: it exits through a tail call to `g`, so
  // FuncExit instrumentation on f must fire once per call to f.
  const auto bin = assembler::assemble(R"(
    .globl _start
    .globl f
    .globl g
_start:
    li s0, 0
    li s1, 4
tloop:
    call f
    addi s0, s0, 1
    blt s0, s1, tloop
    mv a0, s2
    li a7, 93
    ecall
f:
    addi s2, s2, 2
    j g
g:
    addi s2, s2, 1
    ret
)");
  ASSERT_EQ(run_binary(bin), 12);  // 4 * (2 + 1)

  BinaryEditor editor(bin);
  const auto* f = editor.code().function_named("f");
  ASSERT_NE(f, nullptr);
  // The tail-call block must be enumerated as an exit point at all.
  const auto points = patch::find_points(*f, PointType::FuncExit);
  ASSERT_FALSE(points.empty());

  const auto exits = editor.alloc_var("exits");
  editor.insert_at(f->entry(), PointType::FuncExit, increment(exits));
  auto proc = proccontrol::Process::launch(bin);
  proc->apply_patch(editor);
  EXPECT_EQ(run_process(*proc), 12);
  EXPECT_EQ(proc->read_mem(exits.addr, 8), 4u);  // one exit per call

  // Same property through the static backend.
  BinaryEditor se(bin);
  const auto exits2 = se.alloc_var("exits");
  se.insert_at(f->entry(), PointType::FuncExit, increment(exits2));
  Machine m;
  EXPECT_EQ(run_binary(se.commit(), &m), 12);
  EXPECT_EQ(m.memory().read(exits2.addr, 8), 4u);
}

// ---- RVC compressed branch sites ------------------------------------------

constexpr const char* kCompressedBranches = R"(
    .globl _start
    .globl count
_start:
    li a0, 20
    call count
    li a7, 93
    ecall
count:
    li s0, 0          # result (x8: c.beqz-eligible)
    li s1, 0          # i
cloop:
    andi a1, s1, 1
    beqz a1, ceven    # assembler compresses to c.beqz (a1 = x11)
    addi s0, s0, 3
    j cnext           # compresses to c.j
ceven:
    addi s0, s0, 1
cnext:
    addi s1, s1, 1
    bne s1, a0, cloop
    mv a0, s0
    ret
)";
// 20 iterations: 10 odd (+3) + 10 even (+1) = 40

TEST(PatchReloc, InstrumentAtCompressedBranchSite) {
  const auto bin = assembler::assemble(kCompressedBranches);
  ASSERT_EQ(run_binary(bin), 40);

  BinaryEditor editor(bin);
  const auto* f = editor.code().function_named("count");
  ASSERT_NE(f, nullptr);
  const auto blocks = editor.alloc_var("blocks");
  editor.insert_at(f->entry(), PointType::BlockEntry, increment(blocks));
  auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 40);  // bit-exact behaviour
  // entry + 20*(loop head, one arm, join) + exit = 62 block entries
  EXPECT_EQ(m.memory().read(blocks.addr, 8), 62u);
  // The relocated c.beqz/c.j sites stayed in (or returned to) their 2-byte
  // forms: relaxation starts at C2 and never widened them here.
  EXPECT_GE(editor.stats().reloc.branch_c2, 1u);
  EXPECT_GE(editor.stats().reloc.jump_c2, 1u);
  EXPECT_EQ(editor.stats().reloc.branch_long, 0u);
}

TEST(PatchReloc, MultiSnippetOrderingAtCompressedSite) {
  const auto bin = assembler::assemble(kCompressedBranches);
  BinaryEditor editor(bin);
  const auto* f = editor.code().function_named("count");
  ASSERT_NE(f, nullptr);
  const auto v = editor.alloc_var("v");
  // Anchor two order-sensitive snippets at the block holding the
  // compressed branch (the loop head): v = (v + 1) * 2 per execution.
  const std::uint64_t head = f->entry();
  editor.insert_at(head, PointType::FuncEntry, increment(v));
  editor.insert_at(head, PointType::FuncEntry,
                   codegen::assign(v, codegen::binary(codegen::BinOp::Mul,
                                                      codegen::var_expr(v),
                                                      codegen::constant(2))));
  Machine m;
  EXPECT_EQ(run_binary(editor.commit(), &m), 40);
  EXPECT_EQ(m.memory().read(v.addr, 8), 2u);  // one entry: (0+1)*2
}

// ---- edge / backedge trampolines ------------------------------------------

TEST(PatchReloc, BackedgeTrampolineSurvivesRelocationOnBothBackends) {
  const auto bin = assembler::assemble(kCompressedBranches);
  const int want = run_binary(bin);

  // Static backend (symtab rewrite).
  BinaryEditor se(bin);
  const auto* f = se.code().function_named("count");
  ASSERT_NE(f, nullptr);
  const auto back_s = se.alloc_var("back");
  se.insert_at(f->entry(), PointType::LoopBackedge, increment(back_s));
  Machine m;
  EXPECT_EQ(run_binary(se.commit(), &m), want);
  EXPECT_EQ(m.memory().read(back_s.addr, 8), 19u);  // 20 iters, 19 backedges

  // Dynamic backend (live process through ProcessSpace).
  BinaryEditor de(bin);
  const auto back_d = de.alloc_var("back");
  de.insert_at(de.code().function_named("count")->entry(),
               PointType::LoopBackedge, increment(back_d));
  auto proc = proccontrol::Process::launch(bin);
  proc->apply_patch(de);
  EXPECT_EQ(run_process(*proc), want);
  EXPECT_EQ(proc->read_mem(back_d.addr, 8), 19u);
}

TEST(PatchReloc, EdgeTrampolineCountsOneArmOnly) {
  const auto bin = assembler::assemble(kCompressedBranches);
  BinaryEditor editor(bin);
  const auto* f = editor.code().function_named("count");
  ASSERT_NE(f, nullptr);

  // Find the taken edge of the compressed branch (loop head -> odd arm).
  const auto points = patch::find_points(*f, PointType::Edge);
  const parse::Block* head = nullptr;
  for (const auto& [a, b] : f->blocks())
    if (!b->insns().empty() && b->insns().back().insn.is_cond_branch() &&
        b->insns().back().insn.length() == 2) {
      head = b.get();
      break;
    }
  ASSERT_NE(head, nullptr) << "no compressed conditional branch found";
  const std::uint64_t taken =
      head->last().addr +
      static_cast<std::uint64_t>(head->last().insn.branch_offset());
  const patch::Point* edge = nullptr;
  for (const auto& p : points)
    if (p.block == head->start() && p.aux == taken) edge = &p;
  ASSERT_NE(edge, nullptr);

  const auto c = editor.alloc_var("taken");
  editor.insert(*edge, increment(c));
  Machine m;
  EXPECT_EQ(run_binary(editor.commit(), &m), 40);
  EXPECT_EQ(m.memory().read(c.addr, 8), 10u);  // odd arm: 10 of 20 iters
}

// ---- commit session semantics ---------------------------------------------

TEST(PatchReloc, SecondStaticCommitErrorsButSessionContinues) {
  const auto bin = assembler::assemble(kCompressedBranches);
  BinaryEditor editor(bin);
  const auto c = editor.alloc_var("c");
  editor.insert_at(editor.code().function_named("count")->entry(),
                   PointType::FuncEntry, increment(c));

  auto rewritten = editor.commit();
  EXPECT_THROW(editor.commit(), Error);  // static commit is one-shot

  // But the session plan may still be applied to further address spaces.
  symtab::Symtab copy = bin;
  patch::SymtabSpace space(&copy);
  EXPECT_TRUE(editor.commit_to(space).is_ok());
  Machine m1, m2;
  EXPECT_EQ(run_binary(rewritten, &m1), run_binary(copy, &m2));
}

TEST(PatchReloc, RevertBeforeCommitIsAnError) {
  const auto bin = assembler::assemble(kCompressedBranches);
  BinaryEditor editor(bin);
  symtab::Symtab copy = bin;
  patch::SymtabSpace space(&copy);
  const auto s = editor.revert_from(space);
  EXPECT_FALSE(s.is_ok());
  EXPECT_NE(s.message().find("revert_from"), std::string::npos);
}

// ---- branch-reach relaxation ----------------------------------------------

TEST(PatchReloc, RelaxationAvoidsPessimisticBranchWidening) {
  // The old engine widened EVERY conditional branch of a function once its
  // estimated relocated size crossed a threshold. The fixed-point pass
  // only widens branches whose laid-out displacement actually demands it:
  // a large woven snippet far from the loop branch must leave the branch
  // in its short form.
  const auto bin = assembler::assemble(R"(
    .globl _start
    .globl looper
_start:
    call looper
    li a7, 93
    ecall
looper:
    li t0, 0
    li t1, 25
lloop:
    addi t0, t0, 1
    blt t0, t1, lloop
    mv a0, t0
    ret
)");
  BinaryEditor editor(bin);
  const auto big = editor.alloc_var("big");
  const auto* f = editor.code().function_named("looper");
  ASSERT_NE(f, nullptr);
  // ~600 statements woven at FuncEntry: the function is now huge, but the
  // loop branch's own displacement is tiny (the snippet sits before the
  // loop, outside the branch span).
  std::vector<codegen::SnippetPtr> stmts;
  for (int i = 0; i < 600; ++i) stmts.push_back(increment(big));
  editor.insert_at(f->entry(), PointType::FuncEntry,
                   codegen::sequence(std::move(stmts)));
  Machine m;
  EXPECT_EQ(run_binary(editor.commit(), &m), 25);
  EXPECT_EQ(m.memory().read(big.addr, 8), 600u);
  EXPECT_EQ(editor.stats().reloc.branch_long, 0u)
      << "relaxation widened a branch whose displacement fits";
  EXPECT_GE(editor.stats().reloc.relax_iterations, 1u);
}

TEST(PatchReloc, RelaxationTightensDisplacementLadder) {
  // Acceptance experiment: RVC re-compression + relaxation shrink the
  // relocated image, keeping a function's relocated entry within jal reach
  // of its springboard where the uncompressed layout would have fallen off
  // the ladder to auipc+jalr.
  const auto bin = assembler::assemble(R"(
    .globl _start
    .globl alpha
    .globl beta
_start:
    call alpha
    call beta
    add a0, a0, s3
    andi a0, a0, 255
    li a7, 93
    ecall
alpha:
    li s3, 0
    li t0, 0
    li t1, 5
aloop:
    addi s3, s3, 2
    addi t0, t0, 1
    blt t0, t1, aloop
    ret
beta:
    li a0, 3
    ret
)");
  ASSERT_EQ(run_binary(bin), 13);  // 5*2 + 3

  const auto instrument = [&](BinaryEditor& e) {
    const auto big = e.alloc_var("big");
    std::vector<codegen::SnippetPtr> stmts;
    for (int i = 0; i < 600; ++i) stmts.push_back(increment(big));
    e.insert_at(e.code().function_named("alpha")->entry(),
                PointType::FuncEntry, codegen::sequence(std::move(stmts)));
    e.insert_at(e.code().function_named("beta")->entry(),
                PointType::FuncEntry,
                increment(e.alloc_var("beta_calls")));
  };

  // Phase 1: measure the layout (base-independent here: alpha/beta contain
  // no absolute transfers, so widget sizes do not depend on the base).
  BinaryEditor probe(bin);
  instrument(probe);
  probe.commit();
  const std::uint64_t beta_entry =
      probe.code().function_named("beta")->entry();
  const std::uint64_t alpha_entry =
      probe.code().function_named("alpha")->entry();
  const std::uint64_t base1 = probe.plan()->relocated_entry.at(alpha_entry);
  const std::uint64_t off_beta =
      probe.plan()->relocated_entry.at(beta_entry) - base1;
  const std::uint64_t savings = probe.stats().reloc.bytes_before_rvc -
                                probe.stats().reloc.bytes_after_rvc;
  // The experiment needs real compression wins in the woven code.
  ASSERT_GT(savings, 1024u);

  // Phase 2: park the patch area so beta's relocated entry lands just
  // inside the jal ±1MiB reach — reachable only because the rvc pass
  // shrank everything laid out before it.
  const std::uint64_t base2 =
      (beta_entry + (1ULL << 20) - off_beta - 512) & ~0xfULL;
  BinaryEditor editor(bin);
  instrument(editor);
  editor.set_patch_base(base2, base2 + 0x200000);
  auto rewritten = editor.commit();

  const std::uint64_t delta_beta =
      editor.plan()->relocated_entry.at(beta_entry) - beta_entry;
  EXPECT_LT(delta_beta, 1ULL << 20);  // within jal reach
  // Without re-compression beta's entry would sit `savings` bytes deeper
  // (minus beta's own few compressible bytes): beyond the reach.
  EXPECT_GT(delta_beta + savings - 128, 1ULL << 20);
  // The ladder stayed on cheap strategies for both entries.
  EXPECT_EQ(editor.stats().entry_auipc_jalr, 0u);
  EXPECT_EQ(editor.stats().entry_trap, 0u);
  EXPECT_EQ(editor.stats().entry_jal + editor.stats().entry_cj, 2u);

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 13);  // still bit-exact
}

// ---- both backends produce identical behaviour ----------------------------

TEST(PatchReloc, StaticAndDynamicBackendsAgreeBitExact) {
  const auto bin = assembler::assemble(kCompressedBranches);
  const int want = run_binary(bin);

  BinaryEditor editor(bin);
  const auto c = editor.alloc_var("calls");
  editor.insert_at(editor.code().function_named("count")->entry(),
                   PointType::FuncEntry, increment(c));

  // One plan, two address spaces: the static model and the live process.
  symtab::Symtab static_out = bin;
  patch::SymtabSpace static_space(&static_out);
  ASSERT_TRUE(editor.commit_to(static_space).is_ok());

  auto proc = proccontrol::Process::launch(bin);
  ASSERT_TRUE(editor.commit_to(proc->address_space()).is_ok());

  Machine sm;
  const int static_exit = run_binary(static_out, &sm);
  const int dynamic_exit = run_process(*proc);

  EXPECT_EQ(static_exit, want);
  EXPECT_EQ(dynamic_exit, want);
  EXPECT_EQ(sm.memory().read(c.addr, 8), 1u);
  EXPECT_EQ(proc->read_mem(c.addr, 8), 1u);
  // Identical patch text mapped by both backends.
  const auto* plan = editor.plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(static_space.read_code(plan->text.addr, plan->text.bytes.size()),
            plan->text.bytes);
}

}  // namespace
