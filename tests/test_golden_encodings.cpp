// Golden encoding tests: well-known instruction words cross-checked
// against the RISC-V ISA manual / binutils output, in both directions
// (decode text, assemble bytes). These anchor the shared opcode table to
// the real ISA, complementing the internal round-trip properties.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "isa/decoder.hpp"

namespace {

using namespace rvdyn;

struct Golden {
  std::uint32_t word;
  const char* text;
};

// Standard 32-bit encodings (rd/rs fields per the ISA manual examples).
const Golden kGolden32[] = {
    {0x00000013, "addi zero, zero, 0"},      // nop
    {0xff010113, "addi sp, sp, -16"},
    {0x00058513, "addi a0, a1, 0"},          // mv a0, a1
    {0x00100513, "addi a0, zero, 1"},        // li a0, 1
    {0x00c58533, "add a0, a1, a2"},
    {0x40c58533, "sub a0, a1, a2"},
    {0x00c5f533, "and a0, a1, a2"},
    {0x00c5e533, "or a0, a1, a2"},
    {0x00c5c533, "xor a0, a1, a2"},
    {0x02c58533, "mul a0, a1, a2"},
    {0x02c5c533, "div a0, a1, a2"},
    {0x00013503, "ld a0, 0(sp)"},
    {0x00113423, "sd ra, 8(sp)"},
    {0x00052503, "lw a0, 0(a0)"},
    {0x12345537, "lui a0, 305418240"},       // lui a0, 0x12345
    {0x00000297, "auipc t0, 0"},
    {0x000000ef, "jal ra, .+0"},
    {0x00008067, "jalr zero, ra, 0"},        // ret
    {0x00000073, "ecall"},
    {0x00100073, "ebreak"},
    {0x0000100f, "fence.i"},
    {0x00b50463, "beq a0, a1, .+8"},
    {0x00053507, "fld fa0, 0(a0)"},
    {0x02c5f553, "fadd.d fa0, fa1, fa2"},
    {0x6ac5f543, "fmadd.d fa0, fa1, fa2, fa3"},
    {0xc0002573, "csrrs a0, csr3072, zero"},  // rdcycle a0
    {0x00b6252f, "amoadd.w a0, a1, 0(a2)"},
    {0x0e05d533, "czero.eqz a0, a1, zero"},
    {0x20b52533, "sh1add a0, a0, a1"},
};

TEST(Golden, KnownWordsDecodeToKnownText) {
  isa::Decoder dec(isa::ExtensionSet(0xffff));
  for (const Golden& g : kGolden32) {
    isa::Instruction insn;
    ASSERT_TRUE(dec.decode32(g.word, &insn))
        << std::hex << g.word << " failed to decode";
    EXPECT_EQ(insn.to_string(), g.text) << std::hex << g.word;
  }
}

// Compressed encodings (hand-checked against the C-extension tables).
struct Golden16 {
  std::uint16_t half;
  const char* text;  // canonical expansion
};

const Golden16 kGolden16[] = {
    {0x0001, "addi zero, zero, 0"},  // c.nop
    {0x1141, "addi sp, sp, -16"},    // c.addi16sp -16
    {0x4501, "addi a0, zero, 0"},    // c.li a0, 0
    {0x852e, "add a0, zero, a1"},    // c.mv a0, a1
    {0x952e, "add a0, a0, a1"},      // c.add a0, a1
    {0x8082, "jalr zero, ra, 0"},    // c.jr ra = ret
    {0x9002, "ebreak"},              // c.ebreak
    {0xa001, "jal zero, .+0"},       // c.j .
    {0x6502, "ld a0, 0(sp)"},        // c.ldsp a0, 0
    {0xe02a, "sd a0, 0(sp)"},        // c.sdsp a0, 0
    {0x4108, "lw a0, 0(a0)"},        // c.lw a0, 0(a0)
    {0x050a, "slli a0, a0, 2"},      // c.slli
    {0x8905, "andi a0, a0, 1"},      // c.andi
};

TEST(Golden, KnownCompressedExpansions) {
  isa::Decoder dec;
  for (const Golden16& g : kGolden16) {
    isa::Instruction insn;
    ASSERT_TRUE(dec.decode16(g.half, &insn))
        << std::hex << g.half << " failed to decode";
    EXPECT_TRUE(insn.compressed());
    EXPECT_EQ(insn.to_string(), g.text) << std::hex << g.half;
  }
}

// Assembler golden bytes: source line -> exact encoding.
struct AsmGolden {
  const char* line;
  std::vector<std::uint8_t> bytes;
};

TEST(Golden, AssemblerEmitsKnownBytes) {
  const AsmGolden cases[] = {
      {"add a0, a1, a2", {0x33, 0x85, 0xc5, 0x00}},
      {"sub a0, a1, a2", {0x33, 0x85, 0xc5, 0x40}},
      {"ecall", {0x73, 0x00, 0x00, 0x00}},
      {"sd t0, 8(a0)", {0x23, 0x34, 0x55, 0x00}},  // not compressible
      {"sd ra, 8(sp)", {0x06, 0xe4}},   // compresses to c.sdsp ra, 8
      {"ret", {0x82, 0x80}},            // compresses to c.jr ra
      {"nop", {0x13, 0x00, 0x00, 0x00}},
  };
  for (const auto& c : cases) {
    const std::string src = std::string(".globl _start\n_start:\n  ") +
                            c.line + "\n";
    const auto st = assembler::assemble(src);
    const auto* text = st.find_section(".text");
    ASSERT_NE(text, nullptr) << c.line;
    ASSERT_GE(text->data.size(), c.bytes.size()) << c.line;
    for (std::size_t i = 0; i < c.bytes.size(); ++i)
      EXPECT_EQ(text->data[i], c.bytes[i]) << c.line << " byte " << i;
  }
}

TEST(Golden, AssemblerUncompressedMode) {
  assembler::Options opts;
  opts.extensions = isa::ExtensionSet::rv64g();
  const auto st = assembler::assemble(
      ".globl _start\n_start:\n  ret\n", opts);
  const auto* text = st.find_section(".text");
  // Without RVC, ret is the 4-byte jalr: 0x00008067.
  ASSERT_GE(text->data.size(), 4u);
  EXPECT_EQ(text->data[0], 0x67);
  EXPECT_EQ(text->data[1], 0x80);
  EXPECT_EQ(text->data[2], 0x00);
  EXPECT_EQ(text->data[3], 0x00);
}

}  // namespace
