// Data-watchpoint tests: the emulator's hardware-debug-register analogue
// and its ProcControlAPI surface.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "proccontrol/process.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;
using proccontrol::Event;
using proccontrol::Process;

constexpr const char* kWriter = R"(
    .bss
    .align 3
cell:  .zero 8
other: .zero 8
    .text
    .globl _start
_start:
    la t0, other
    li t1, 1
    sd t1, 0(t0)      # unwatched write
    la t0, cell
    li t1, 2
    sd t1, 0(t0)      # watched write (first hit)
    ld t2, 0(t0)      # watched read
    li t1, 3
    sd t1, 0(t0)      # watched write (second hit)
    li a0, 0
    li a7, 93
    ecall
)";

TEST(Watchpoints, WriteWatchFiresPerStore) {
  const auto bin = assembler::assemble(kWriter);
  const auto* cell = bin.find_symbol("cell");
  ASSERT_NE(cell, nullptr);

  Machine m;
  m.load(bin);
  m.set_watchpoint(cell->value, 8, /*on_read=*/false, /*on_write=*/true);

  ASSERT_EQ(static_cast<int>(m.run(1000)),
            static_cast<int>(StopReason::Watchpoint));
  EXPECT_TRUE(m.watch_hit().was_write);
  EXPECT_EQ(m.watch_hit().addr, cell->value);
  // The store completed before the stop.
  EXPECT_EQ(m.memory().read(cell->value, 8), 2u);

  ASSERT_EQ(static_cast<int>(m.run(1000)),
            static_cast<int>(StopReason::Watchpoint));
  EXPECT_EQ(m.memory().read(cell->value, 8), 3u);

  EXPECT_EQ(static_cast<int>(m.run(1000)),
            static_cast<int>(StopReason::Exited));
}

TEST(Watchpoints, ReadWatchSeesTheLoad) {
  const auto bin = assembler::assemble(kWriter);
  const auto* cell = bin.find_symbol("cell");
  Machine m;
  m.load(bin);
  m.set_watchpoint(cell->value, 8, /*on_read=*/true, /*on_write=*/false);
  ASSERT_EQ(static_cast<int>(m.run(1000)),
            static_cast<int>(StopReason::Watchpoint));
  EXPECT_FALSE(m.watch_hit().was_write);
  EXPECT_EQ(static_cast<int>(m.run(1000)),
            static_cast<int>(StopReason::Exited));
}

TEST(Watchpoints, PartialOverlapDetected) {
  // A 1-byte watch inside an 8-byte store range must fire.
  const auto bin = assembler::assemble(kWriter);
  const auto* cell = bin.find_symbol("cell");
  Machine m;
  m.load(bin);
  m.set_watchpoint(cell->value + 3, 1, false, true);
  EXPECT_EQ(static_cast<int>(m.run(1000)),
            static_cast<int>(StopReason::Watchpoint));
}

TEST(Watchpoints, ClearStopsFiring) {
  const auto bin = assembler::assemble(kWriter);
  const auto* cell = bin.find_symbol("cell");
  Machine m;
  m.load(bin);
  const unsigned id = m.set_watchpoint(cell->value, 8, false, true);
  ASSERT_EQ(static_cast<int>(m.run(1000)),
            static_cast<int>(StopReason::Watchpoint));
  m.clear_watchpoint(id);
  EXPECT_EQ(static_cast<int>(m.run(1000)),
            static_cast<int>(StopReason::Exited));
}

TEST(Watchpoints, ProcControlSurface) {
  const auto bin = assembler::assemble(kWriter);
  const auto* cell = bin.find_symbol("cell");
  auto proc = Process::launch(bin);
  proc->set_watchpoint(cell->value, 8);  // write watch by default

  int hits = 0;
  while (true) {
    const Event ev = proc->continue_run();
    if (ev.kind == Event::Kind::Exited) break;
    ASSERT_EQ(static_cast<int>(ev.kind),
              static_cast<int>(Event::Kind::WatchHit));
    ++hits;
    // The event reports the accessing instruction's pc inside _start.
    EXPECT_TRUE(bin.in_code(ev.addr));
  }
  EXPECT_EQ(hits, 2);
}

TEST(Watchpoints, FindTheCorruptingStore) {
  // The classic debugger workflow: who wrote this variable? The watchpoint
  // pc identifies the exact store among several candidates.
  const char* src = R"(
    .bss
    .align 3
victim: .zero 8
    .text
    .globl _start
_start:
    la s0, victim
    li t0, 0
    li t1, 10
wloop:
    addi t0, t0, 1
    blt t0, t1, wloop
    sd t0, 0(s0)      # <- the store we want to catch
    li a0, 0
    li a7, 93
    ecall
)";
  const auto bin = assembler::assemble(src);
  const auto* victim = bin.find_symbol("victim");
  auto proc = Process::launch(bin);
  proc->set_watchpoint(victim->value, 8);
  const Event ev = proc->continue_run();
  ASSERT_EQ(static_cast<int>(ev.kind),
            static_cast<int>(Event::Kind::WatchHit));
  // Decode the reported instruction: it must be the sd.
  std::uint8_t buf[4];
  for (int i = 0; i < 4; ++i)
    buf[i] = static_cast<std::uint8_t>(proc->read_mem(ev.addr + i, 1));
  isa::Decoder dec;
  isa::Instruction insn;
  ASSERT_GT(dec.decode(buf, 4, &insn), 0u);
  EXPECT_EQ(insn.mnemonic(), isa::Mnemonic::sd);
  EXPECT_EQ(proc->machine().watch_hit().addr, victim->value);
}

}  // namespace
