// Integration tests: assemble RV64GC programs and execute them on the
// emulator, checking exit codes, output, memory effects, and that the
// auto-compression pass preserves program behaviour.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "isa/decoder.hpp"
#include "symtab/riscv_attrs.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::StopReason;

symtab::Symtab asm_ok(const std::string& src, assembler::Options opts = {}) {
  return assembler::assemble(src, opts);
}

int run_to_exit(Machine& m, const symtab::Symtab& bin,
                std::uint64_t max_steps = 100'000'000) {
  m.load(bin);
  const StopReason r = m.run(max_steps);
  EXPECT_EQ(static_cast<int>(r), static_cast<int>(StopReason::Exited))
      << "stopped at pc=0x" << std::hex << m.stop_pc();
  return m.exit_code();
}

constexpr const char* kExit42 = R"(
  .globl _start
_start:
  li a0, 42
  li a7, 93
  ecall
)";

TEST(AsmEmu, ExitCode) {
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(kExit42)), 42);
}

TEST(AsmEmu, ArithmeticChain) {
  const char* src = R"(
    .globl _start
_start:
    li t0, 1000
    li t1, 337
    add t2, t0, t1      # 1337
    slli t2, t2, 4      # 21392
    srai t2, t2, 2      # 5348
    andi a0, t2, 255    # 5348 & 255 = 228
    li a7, 93
    ecall
  )";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 228);
}

TEST(AsmEmu, Li64BitConstants) {
  // Exercise every materialization path, folding results into one byte.
  const char* src = R"(
    .globl _start
_start:
    li t0, 0x123456789abcdef0
    li t1, 0x123456789abcde00
    sub t2, t0, t1        # 0xf0
    li t3, -1
    li t4, 0x7fffffff     # lui/addiw corner
    li t5, 0x80000000     # needs 64-bit path (positive, not sext32)
    srli t4, t4, 24       # 0x7f
    srli t5, t5, 24       # 0x80
    add a0, t2, t4        # 0x16f
    add a0, a0, t5        # 0x1ef
    andi a0, a0, 0xff     # 0xef = 239
    add a0, a0, t3
    addi a0, a0, 1        # 239 again
    li a7, 93
    ecall
  )";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 239);
}

TEST(AsmEmu, LoopsAndBranches) {
  // sum 1..100 = 5050; exit code 5050 & 0xff = 186
  const char* src = R"(
    .globl _start
_start:
    li t0, 0          # sum
    li t1, 1          # i
    li t2, 100
loop:
    add t0, t0, t1
    addi t1, t1, 1
    ble t1, t2, loop
    andi a0, t0, 255
    li a7, 93
    ecall
  )";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 5050 & 0xff);
}

TEST(AsmEmu, CallRetAndStack) {
  const char* src = R"(
    .globl _start
    .globl double_it
_start:
    li a0, 21
    call double_it
    li a7, 93
    ecall

double_it:
    addi sp, sp, -16
    sd ra, 8(sp)
    add a0, a0, a0
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
)";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 42);
}

TEST(AsmEmu, DataSectionsAndLa) {
  const char* src = R"(
    .data
value:  .dword 40
    .bss
scratch: .zero 8
    .text
    .globl _start
_start:
    la t0, value
    ld a0, 0(t0)
    addi a0, a0, 2
    la t1, scratch
    sd a0, 0(t1)
    ld a0, 0(t1)
    li a7, 93
    ecall
)";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 42);
}

TEST(AsmEmu, WriteSyscall) {
  const char* src = R"(
    .rodata
msg: .asciz "hello rvdyn\n"
    .text
    .globl _start
_start:
    li a0, 1
    la a1, msg
    li a2, 12
    li a7, 64
    ecall
    li a0, 0
    li a7, 93
    ecall
)";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 0);
  EXPECT_EQ(m.output(), "hello rvdyn\n");
}

TEST(AsmEmu, JumpTableViaRodata) {
  // The classic switch lowering: bounds check, table load, jalr.
  const char* src = R"(
    .rodata
    .align 3
table:
    .dword case0
    .dword case1
    .dword case2
    .text
    .globl _start
_start:
    li a0, 2            # selector
    li t0, 3
    bgeu a0, t0, default
    slli t1, a0, 3
    la t2, table
    add t1, t1, t2
    ld t1, 0(t1)
    jr t1
case0:
    li a0, 10
    j done
case1:
    li a0, 20
    j done
case2:
    li a0, 30
    j done
default:
    li a0, 99
done:
    li a7, 93
    ecall
)";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 30);
}

TEST(AsmEmu, DoubleFloatMatvec) {
  // 2.5 * 4.0 + 1.5 = 11.5 -> *2 = 23
  const char* src = R"(
    .rodata
vals: .dword 0x4004000000000000   # 2.5
      .dword 0x4010000000000000   # 4.0
      .dword 0x3ff8000000000000   # 1.5
    .text
    .globl _start
_start:
    la t0, vals
    fld fa0, 0(t0)
    fld fa1, 8(t0)
    fld fa2, 16(t0)
    fmadd.d fa3, fa0, fa1, fa2    # 11.5
    fadd.d fa3, fa3, fa3          # 23.0
    fcvt.l.d a0, fa3
    li a7, 93
    ecall
)";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 23);
}

TEST(AsmEmu, MulDivRem) {
  const char* src = R"(
    .globl _start
_start:
    li t0, 7
    li t1, 6
    mul t2, t0, t1      # 42
    li t3, 100
    div t4, t3, t0      # 14
    rem t5, t3, t0      # 2
    add a0, t2, t4      # 56
    add a0, a0, t5      # 58
    li t6, 0
    div t6, t3, t6      # div by zero -> -1
    add a0, a0, t6      # 57
    li a7, 93
    ecall
)";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 57);
}

TEST(AsmEmu, AtomicsSingleHart) {
  const char* src = R"(
    .data
    .align 3
cell: .dword 40
    .text
    .globl _start
_start:
    la t0, cell
    li t1, 2
    amoadd.d t2, t1, (t0)   # t2=40, cell=42
    ld a0, 0(t0)
retry:
    lr.d t3, (t0)
    addi t3, t3, 1
    sc.d t4, t3, (t0)
    bnez t4, retry
    ld a0, 0(t0)            # 43
    addi a0, a0, -1         # 42
    li a7, 93
    ecall
)";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 42);
}

TEST(AsmEmu, CompressedAndUncompressedBehaveIdentically) {
  const char* src = R"(
    .globl _start
_start:
    li t0, 0
    li t1, 50
loop:
    addi t0, t0, 3
    addi t1, t1, -1
    bnez t1, loop
    andi a0, t0, 255    # 150
    li a7, 93
    ecall
)";
  assembler::Options with_c;
  assembler::Options no_c;
  no_c.extensions = isa::ExtensionSet::rv64g();

  const auto bin_c = asm_ok(src, with_c);
  const auto bin_g = asm_ok(src, no_c);
  // The RVC build must actually be smaller.
  const auto* text_c = bin_c.find_section(".text");
  const auto* text_g = bin_g.find_section(".text");
  ASSERT_NE(text_c, nullptr);
  ASSERT_NE(text_g, nullptr);
  EXPECT_LT(text_c->data.size(), text_g->data.size());

  Machine mc, mg(isa::ExtensionSet::rv64g());
  EXPECT_EQ(run_to_exit(mc, bin_c), 150);
  EXPECT_EQ(run_to_exit(mg, bin_g), 150);
}

TEST(AsmEmu, RvcBinaryRejectedByNonRvcMachine) {
  // "li a0, 1" compresses to c.li, which an RV64G hart must reject.
  const char* src = ".globl _start\n_start:\n  li a0, 1\n  li a7, 93\n  ecall\n";
  Machine m(isa::ExtensionSet::rv64g());
  m.load(asm_ok(src));
  const StopReason r = m.run(1000);
  EXPECT_EQ(static_cast<int>(r), static_cast<int>(StopReason::IllegalInsn));
}

TEST(AsmEmu, TailCall) {
  const char* src = R"(
    .globl _start
_start:
    li a0, 5
    call wrapper
    li a7, 93
    ecall
wrapper:
    addi a0, a0, 1
    tail target        # jalr x0 via t1: call-shaped jump
target:
    slli a0, a0, 3     # 48
    ret
)";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 48);
}

TEST(AsmEmu, ClockGettimeVirtualTime) {
  const char* src = R"(
    .bss
ts: .zero 16
    .text
    .globl _start
_start:
    li a0, 1
    la a1, ts
    li a7, 113
    ecall
    la a1, ts
    ld a0, 8(a1)      # nanoseconds field
    seqz a0, a0       # expect nonzero ns after a few instructions? may be 0
    li a7, 93
    ecall
)";
  // Just check the call succeeds and time is monotone with work.
  Machine m;
  m.load(asm_ok(src));
  ASSERT_EQ(static_cast<int>(m.run(10000)),
            static_cast<int>(StopReason::Exited));
  EXPECT_GT(m.cycles(), 0u);
  EXPECT_GT(m.instret(), 0u);
  EXPECT_GE(m.cycles(), m.instret());
}

TEST(AsmEmu, EbreakStops) {
  const char* src = R"(
    .globl _start
_start:
    li a0, 1
    ebreak
    li a0, 2
    li a7, 93
    ecall
)";
  Machine m;
  m.load(asm_ok(src));
  const StopReason r = m.run(1000);
  EXPECT_EQ(static_cast<int>(r), static_cast<int>(StopReason::Breakpoint));
  EXPECT_EQ(m.get_x(10), 1u);
  // Resume past the (2-byte compressed) ebreak.
  m.set_pc(m.pc() + 2);
  EXPECT_EQ(static_cast<int>(m.run(1000)),
            static_cast<int>(StopReason::Exited));
  EXPECT_EQ(m.exit_code(), 2);
}

TEST(AsmEmu, CsrCounters) {
  const char* src = R"(
    .globl _start
_start:
    rdcycle t0
    li t1, 0
    li t2, 10
l:  addi t1, t1, 1
    bne t1, t2, l
    rdcycle t3
    sub a0, t3, t0
    sltu a0, x0, a0     # 1 if cycles advanced
    li a7, 93
    ecall
)";
  Machine m;
  EXPECT_EQ(run_to_exit(m, asm_ok(src)), 1);
}

// ---- ELF round-trip ----

TEST(Elf, WriteReadRoundTrip) {
  const auto st = asm_ok(kExit42);
  const auto image = st.write();
  const auto st2 = symtab::Symtab::read(image);

  EXPECT_EQ(st2.entry, st.entry);
  EXPECT_EQ(st2.e_flags, st.e_flags);
  const auto* text = st2.find_section(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(text->data, st.find_section(".text")->data);
  ASSERT_NE(st2.find_symbol("_start"), nullptr);
  EXPECT_EQ(st2.find_symbol("_start")->value, st.entry);

  // The re-read binary must still run.
  Machine m;
  EXPECT_EQ(run_to_exit(m, st2), 42);
}

TEST(Elf, ExtensionDiscoveryFromAttributes) {
  const auto st = asm_ok(kExit42);
  const auto exts = st.extensions();
  EXPECT_TRUE(exts.has(isa::Extension::C));
  EXPECT_TRUE(exts.has(isa::Extension::M));
  EXPECT_TRUE(exts.has(isa::Extension::D));
  EXPECT_TRUE(exts.has(isa::Extension::Zicsr));
}

TEST(Elf, ExtensionFallbackToEFlags) {
  auto st = asm_ok(kExit42);
  // Strip the attributes section; e_flags alone must still report RVC + D.
  auto& secs = st.sections();
  for (auto it = secs.begin(); it != secs.end(); ++it) {
    if (it->name == ".riscv.attributes") {
      secs.erase(it);
      break;
    }
  }
  const auto exts = st.extensions();
  EXPECT_TRUE(exts.has(isa::Extension::C));
  EXPECT_TRUE(exts.has(isa::Extension::D));
  EXPECT_TRUE(exts.has(isa::Extension::F));
}

TEST(Elf, AttributesParseRejectsGarbage) {
  std::vector<std::uint8_t> junk = {0x42, 0x00, 0x01};
  EXPECT_FALSE(symtab::parse_riscv_arch_attribute(junk).has_value());
}

TEST(Elf, AttributesBuildParseRoundTrip) {
  const auto payload = symtab::build_riscv_attributes("rv64imafdc_zicsr");
  const auto arch = symtab::parse_riscv_arch_attribute(payload);
  ASSERT_TRUE(arch.has_value());
  EXPECT_EQ(*arch, "rv64imafdc_zicsr");
}

TEST(Asm, ErrorsAreLineNumbered) {
  try {
    asm_ok(".text\n  bogus a0, a1\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("asm:2"), std::string::npos);
  }
}

TEST(Asm, UndefinedLabelFails) {
  EXPECT_THROW(asm_ok(".text\n_start:\n  j nowhere\n"), Error);
}

TEST(Asm, ExtensionGating) {
  assembler::Options opts;
  opts.extensions = isa::ExtensionSet::rv64i();
  EXPECT_THROW(asm_ok(".text\n_start:\n  mul a0, a0, a0\n", opts), Error);
}

TEST(Asm, FunctionSymbolsHaveSizes) {
  const char* src = R"(
    .text
    .globl f
    .type f, @function
f:
    nop
    nop
    ret
    .size f, .-f
)";
  const auto st = asm_ok(src);
  const auto* f = st.find_symbol("f");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->is_function());
  EXPECT_GT(f->size, 0u);
}

}  // namespace
