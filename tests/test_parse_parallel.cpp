// Parallel-parse determinism: the work-stealing traversal must produce
// byte-identical CFGs at every thread count — same function sets, block
// boundaries, instruction streams, edge lists, and stats. Also unit-tests
// the two concurrent structures underneath it (AtomicAddrSet,
// WorkStealingPool) under real thread contention.
//
// Build with -DRVDYN_SANITIZE=thread to run these under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "parse/cfg.hpp"
#include "parse/registry.hpp"
#include "parse/scheduler.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using parse::AtomicAddrSet;
using parse::CodeObject;
using parse::EdgeType;
using parse::ParseWork;
using parse::SchedStats;
using parse::WorkStealingPool;

// Canonical textual form of a parsed CodeObject: every function (sorted by
// entry), its name, callees, stats, and every block's boundaries,
// instruction encodings, successor edges (in stored order), and pred list.
// Two parses are considered identical iff their dumps match byte-for-byte.
std::string canonical_dump(const CodeObject& co) {
  std::ostringstream os;
  os << std::hex;
  for (const auto& [entry, f] : co.functions()) {
    const auto& st = f->stats();
    os << "fn " << entry << ' ' << f->name() << " b=" << st.n_blocks
       << " i=" << st.n_insns << " c=" << st.n_calls
       << " tc=" << st.n_tail_calls << " r=" << st.n_returns
       << " jt=" << st.n_jump_tables << " u=" << st.n_unresolved << '\n';
    os << "  callees:";
    for (std::uint64_t c : f->callees()) os << ' ' << c;
    os << '\n';
    for (const auto& [start, b] : f->blocks()) {
      os << "  blk " << start << '-' << b->end() << '\n';
      for (const auto& pi : b->insns())
        os << "    " << pi.addr << ':' << pi.insn.length() << ':'
           << pi.insn.raw() << ':' << static_cast<int>(pi.insn.mnemonic())
           << '\n';
      os << "    succs:";
      for (const auto& e : b->succs())
        os << ' ' << static_cast<int>(e.type) << '@' << e.target;
      os << '\n';
      os << "    preds:";
      for (const auto* p : b->preds()) os << ' ' << p->start();
      os << '\n';
    }
  }
  return os.str();
}

std::string parse_dump(const symtab::Symtab& st, unsigned threads) {
  CodeObject co(st);
  parse::ParseOptions opts;
  opts.num_threads = threads;
  co.parse(opts);
  return canonical_dump(co);
}

// The headline determinism check from the issue: the 2000-function
// workload parsed at 1/2/4/8 threads, several reps each to shake out
// scheduling races, must match the single-thread parse exactly.
TEST(ParseParallel, DeterministicAcrossThreadCounts) {
  symtab::Symtab st = assembler::assemble(workloads::many_function_program(2000));
  const std::string ref = parse_dump(st, 1);
  ASSERT_FALSE(ref.empty());
  for (unsigned threads : {2u, 4u, 8u}) {
    for (int rep = 0; rep < 3; ++rep) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " rep=" << rep);
      EXPECT_EQ(parse_dump(st, threads), ref);
    }
  }
}

// A jump whose target only *becomes* a known function entry during the
// parse (a plain label discovered via someone else's call) must be
// reclassified as a tail call by the finalize fixup — identically at every
// thread count, no matter which worker reached the jump first.
TEST(ParseParallel, TailCallToDiscoveredEntryIsDeterministic) {
  const std::string src = R"(
    .globl _start
_start:
    call caller_a
    call caller_b
    li a7, 93
    ecall

    .globl caller_a
caller_a:
    call shared
    ret

    .globl caller_b
caller_b:
    li a0, 2
    j shared

shared:
    li a0, 7
    ret
)";
  symtab::Symtab st = assembler::assemble(src);
  const std::string ref = parse_dump(st, 1);

  CodeObject co(st);
  co.parse({});
  parse::Function* shared = nullptr;
  for (const auto& [a, f] : co.functions())
    if (f->name().rfind("func_", 0) == 0) shared = f.get();
  ASSERT_NE(shared, nullptr) << "shared body not promoted to a function";

  parse::Function* b = co.function_named("caller_b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->stats().n_tail_calls, 1u);
  EXPECT_TRUE(b->callees().count(shared->entry()));
  // caller_b's speculatively-parsed copy of shared's body must be pruned.
  EXPECT_EQ(b->block_at(shared->entry()), nullptr);
  bool found_tc = false;
  for (const auto& [a, blk] : b->blocks())
    for (const auto& e : blk->succs())
      if (e.type == EdgeType::TailCall && e.target == shared->entry())
        found_tc = true;
  EXPECT_TRUE(found_tc);

  for (unsigned threads : {2u, 4u, 8u})
    for (int rep = 0; rep < 3; ++rep) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " rep=" << rep);
      EXPECT_EQ(parse_dump(st, threads), ref);
    }
}

// Gap parsing (speculative prologue scan over unclaimed byte ranges) runs
// across the worker pool; the discovered functions must not depend on
// which worker scanned which gap.
TEST(ParseParallel, GapFunctionsDeterministic) {
  const std::string src = R"(
    .globl _start
_start:
    li a7, 93
    ecall
    ret

    addi sp, sp, -16
    sd ra, 8(sp)
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
)";
  symtab::Symtab st = assembler::assemble(src);
  const std::string ref = parse_dump(st, 1);

  CodeObject co(st);
  co.parse({});
  bool found_gap_fn = false;
  for (const auto& [a, f] : co.functions())
    if (f->name().rfind("func_", 0) == 0) found_gap_fn = true;
  EXPECT_TRUE(found_gap_fn) << "gap scan missed the unlabeled prologue";

  for (unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    EXPECT_EQ(parse_dump(st, threads), ref);
  }
}

// Re-parsing through the same CodeObject-equivalent flow (registry adopt
// path) keeps results stable.
TEST(ParseParallel, RepeatedParseIsStable) {
  symtab::Symtab st = assembler::assemble(workloads::many_function_program(200));
  EXPECT_EQ(parse_dump(st, 4), parse_dump(st, 4));
}

// Exactly one concurrent inserter of each address may win, and every
// inserted address must be visible to lock-free contains() afterwards.
TEST(ParseParallel, AtomicAddrSetConcurrentInsertUniqueness) {
  constexpr std::uint64_t kN = 8192;
  AtomicAddrSet set(kN);
  std::atomic<std::uint64_t> wins{0};
  parse::run_on_workers(4, [&](unsigned) {
    std::uint64_t local = 0;
    for (std::uint64_t i = 0; i < kN; ++i)
      if (set.insert(0x10000 + i * 2)) ++local;
    wins.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(wins.load(), kN);
  for (std::uint64_t i = 0; i < kN; ++i)
    EXPECT_TRUE(set.contains(0x10000 + i * 2)) << "missing addr index " << i;
  EXPECT_FALSE(set.contains(0x10000 + kN * 2));
  EXPECT_FALSE(set.contains(1));
}

// Undersized table: the probe chains fill and inserts spill into the
// per-stripe overflow sets. Membership must still be exact.
TEST(ParseParallel, AtomicAddrSetOverflowPath) {
  AtomicAddrSet set(16);  // ~4k slots total; 16k inserts force overflow
  constexpr std::uint64_t kN = 16384;
  parse::run_on_workers(2, [&](unsigned) {
    for (std::uint64_t i = 0; i < kN; ++i) set.insert(0x2000 + i * 4);
  });
  EXPECT_GT(set.overflow_size(), 0u);
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(set.contains(0x2000 + i * 4)) << "missing addr index " << i;
  EXPECT_FALSE(set.contains(0x2000 + kN * 4));
}

// Tasks that spawn tasks: drain() must retire the whole tree exactly once
// across workers, and the pool must be idle when every drain returns.
TEST(ParseParallel, WorkStealingPoolRunsEverySpawnedTask) {
  constexpr std::uint64_t kLeafBound = 1024;  // spawn while entry < bound
  WorkStealingPool pool(4);
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> sum{0};
  pool.push(0, ParseWork{1, nullptr});
  parse::run_on_workers(pool.workers(), [&](unsigned w) {
    SchedStats stats{};
    pool.drain(
        w,
        [&, w](const ParseWork& item) {
          executed.fetch_add(1, std::memory_order_relaxed);
          sum.fetch_add(item.entry, std::memory_order_relaxed);
          if (item.entry < kLeafBound) {
            pool.push(w, ParseWork{item.entry * 2, nullptr});
            pool.push(w, ParseWork{item.entry * 2 + 1, nullptr});
          }
        },
        &stats);
  });
  EXPECT_TRUE(pool.idle());
  // Complete binary tree over entries 1..2047: 2047 nodes summing to
  // 2047*2048/2.
  EXPECT_EQ(executed.load(), 2047u);
  EXPECT_EQ(sum.load(), 2047u * 2048u / 2);
}

// Single-worker drain degrades to a plain LIFO loop and must terminate
// without any other thread to wake it.
TEST(ParseParallel, WorkStealingPoolSingleWorker) {
  WorkStealingPool pool(1);
  std::uint64_t executed = 0;
  for (std::uint64_t i = 0; i < 100; ++i) pool.push(0, ParseWork{i + 1, nullptr});
  SchedStats stats{};
  pool.drain(0, [&](const ParseWork&) { ++executed; }, &stats);
  EXPECT_EQ(executed, 100u);
  EXPECT_TRUE(pool.idle());
  EXPECT_EQ(stats.steals, 0u);
}

}  // namespace
