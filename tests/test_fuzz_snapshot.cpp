// Dirty-page snapshot/reset: a reset guest must be indistinguishable from
// a cold re-load — memory digest, registers, process state — while paying
// only for pages actually touched. Also covers the satellite contract:
// restoring a page that holds cached/compiled code must stand the JIT and
// decoded caches down exactly like write_code into that page would.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;
using emu::Machine;
using emu::Memory;
using emu::StopReason;

symtab::Symtab assemble_str(const std::string& src) {
  return assembler::assemble(src);
}

// Reset must reproduce the cold-load state bit-exactly: digest, registers,
// pc, instret — after the guest ran to completion and touched real memory.
TEST(FuzzSnapshot, ResetMatchesColdReload) {
  const auto bin = assemble_str(workloads::sort_program(64));

  Machine m;
  m.load(bin);
  const std::uint64_t digest0 = m.memory().digest();
  const auto snap = m.take_snapshot();

  ASSERT_EQ(m.run(), StopReason::Exited);
  EXPECT_EQ(m.exit_code(), 0);
  EXPECT_NE(m.memory().digest(), digest0);  // the run really touched memory

  const auto rs = m.reset_to_snapshot(snap);
  EXPECT_GT(rs.pages_restored, 0u);

  Machine cold;
  cold.load(bin);
  EXPECT_EQ(m.memory().digest(), cold.memory().digest());
  EXPECT_EQ(m.pc(), cold.pc());
  EXPECT_EQ(m.instret(), cold.instret());
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(m.get_x(i), cold.get_x(i)) << "x" << i;
    EXPECT_EQ(m.get_f(i), cold.get_f(i)) << "f" << i;
  }

  // And the reset machine must replay the program identically.
  ASSERT_EQ(m.run(), StopReason::Exited);
  ASSERT_EQ(cold.run(), StopReason::Exited);
  EXPECT_EQ(m.exit_code(), cold.exit_code());
  EXPECT_EQ(m.instret(), cold.instret());
  EXPECT_EQ(m.memory().digest(), cold.memory().digest());
}

// Pages first mapped after the snapshot must be unmapped again by reset —
// otherwise the address space grows monotonically across a campaign.
TEST(FuzzSnapshot, FreshPagesAreDropped) {
  Machine m;
  m.load(assemble_str(workloads::fib_program(5)));
  const std::size_t mapped0 = m.memory().mapped_pages();
  const auto snap = m.take_snapshot();

  m.memory().write(0x40000000, 0xABCD, 8);  // allocates a fresh page
  m.memory().write(0x40002000, 0x1234, 8);  // and another
  EXPECT_EQ(m.memory().mapped_pages(), mapped0 + 2);
  EXPECT_EQ(m.memory().fresh_pages().size(), 2u);

  const auto rs = m.reset_to_snapshot(snap);
  EXPECT_EQ(rs.pages_dropped, 2u);
  EXPECT_EQ(m.memory().mapped_pages(), mapped0);

  Machine cold;
  cold.load(assemble_str(workloads::fib_program(5)));
  EXPECT_EQ(m.memory().digest(), cold.memory().digest());
}

// The dirty list must contain exactly the pages written — direct host
// writes, executed stores, and a store that straddles a page boundary
// (which must dirty both pages).
TEST(FuzzSnapshot, DirtyListIsExact) {
  Machine m;
  m.load(assemble_str(R"(
    .text
    .globl _start
_start:
    li t0, 0x30000000
    li t1, 0x1122334455667788
    sd t1, 0(t0)             # dirties page 0x30000
    li t0, 0x30001ffc
    sd t1, 0(t0)             # straddles 0x30001 / 0x30002
    li a0, 0
    li a7, 93
    ecall
)"));
  // Pre-touch the target pages so the run dirties rather than freshens.
  m.memory().write(0x30000000, 0, 8);
  m.memory().write(0x30001ff8, 0, 8);
  m.memory().write(0x30002000, 0, 8);
  const auto snap = m.take_snapshot();
  ASSERT_EQ(m.run(), StopReason::Exited);

  std::vector<std::uint64_t> dirty = m.memory().dirty_pages();
  std::sort(dirty.begin(), dirty.end());
  // The stack page(s) the loader touched are clean: this program never
  // pushes. Expect exactly the three data pages.
  ASSERT_EQ(dirty.size(), 3u);
  EXPECT_EQ(dirty[0], 0x30000000ULL >> Memory::kPageBits);
  EXPECT_EQ(dirty[1], 0x30001000ULL >> Memory::kPageBits);
  EXPECT_EQ(dirty[2], 0x30002000ULL >> Memory::kPageBits);

  const auto rs = m.reset_to_snapshot(snap);
  EXPECT_EQ(rs.pages_restored, 3u);
  EXPECT_EQ(m.memory().read(0x30000000, 8), 0u);
  EXPECT_EQ(m.memory().read(0x30001ffc, 8), 0u);
}

// Compiled inline stores go through the write TLB; after a reset the write
// TLB is flushed, so the same stores must re-mark their pages dirty on the
// next iteration. Run a store loop hot enough to JIT, reset, run again —
// the second run's dirty list must match the first's.
TEST(FuzzSnapshot, WriteTlbRemarksAfterReset) {
  const auto bin = assemble_str(R"(
    .text
    .globl _start
_start:
    li t0, 0x30000000
    li t1, 0
    li t2, 4096
loop:
    add t3, t0, t1
    sb t1, 0(t3)
    addi t1, t1, 1
    blt t1, t2, loop
    li a0, 0
    li a7, 93
    ecall
)");
  Machine m;
  m.load(bin);
  m.memory().write(0x30000000, 0, 8);  // pre-map so the page dirties
  const auto snap = m.take_snapshot();

  ASSERT_EQ(m.run(), StopReason::Exited);
  auto dirty1 = m.memory().dirty_pages();
  std::sort(dirty1.begin(), dirty1.end());
  ASSERT_FALSE(dirty1.empty());

  for (int round = 0; round < 20; ++round) {  // hot enough to compile
    m.reset_to_snapshot(snap);
    ASSERT_EQ(m.run(), StopReason::Exited);
    auto dirty = m.memory().dirty_pages();
    std::sort(dirty.begin(), dirty.end());
    EXPECT_EQ(dirty, dirty1) << "round " << round;
  }
#if RVDYN_JIT_ENABLED
  EXPECT_GT(m.jit_stats().blocks_entered, 0u)
      << "loop never reached compiled code; test lost its point";
#endif
}

// Satellite regression: a snapshot restore that rewrites a code page must
// evict the stale decoded/compiled blocks for that page. Patch a function
// after the snapshot (changing its result), run it hot, then reset — the
// original behavior must come back even though the JIT had compiled the
// patched version.
TEST(FuzzSnapshot, RestoreStandsDownPatchedCode) {
  const auto bin = assemble_str(R"(
    .text
    .globl _start
    .globl leaf
_start:
    li s0, 0
    li s1, 0
    li s2, 64
loop:
    call leaf
    add s1, s1, a0
    addi s0, s0, 1
    blt s0, s2, loop
    andi a0, s1, 255
    li a7, 93
    ecall
leaf:
    li a0, 1
    ret
)");
  Machine m;
  m.load(bin);
  const auto snap = m.take_snapshot();

  ASSERT_EQ(m.run(), StopReason::Exited);
  const int original_exit = m.exit_code();
  EXPECT_EQ(original_exit, 64);  // 64 iterations x leaf()==1

  // Patch leaf to return 2 (c.li a0, 2 — same 2-byte width as the
  // original c.li a0, 1, so the following ret survives) and run hot: the
  // JIT now holds compiled code for the *patched* page.
  m.reset_to_snapshot(snap);
  const symtab::Symbol* leaf = bin.find_symbol("leaf");
  ASSERT_NE(leaf, nullptr);
  const std::uint8_t enc[2] = {0x09, 0x45};  // c.li a0, 2
  m.write_code(leaf->value, enc, 2);
  ASSERT_EQ(m.run(), StopReason::Exited);
  EXPECT_EQ(m.exit_code(), 128);

  // Reset restores the original bytes; stale compiled blocks for that page
  // must not survive. A second patched round proves the cycle is stable.
  for (int round = 0; round < 3; ++round) {
    const auto rs = m.reset_to_snapshot(snap);
    EXPECT_TRUE(rs.code_invalidated) << "round " << round;
    ASSERT_EQ(m.run(), StopReason::Exited);
    EXPECT_EQ(m.exit_code(), original_exit) << "round " << round;
    m.reset_to_snapshot(snap);
    m.write_code(leaf->value, enc, 2);
    ASSERT_EQ(m.run(), StopReason::Exited);
    EXPECT_EQ(m.exit_code(), 128) << "round " << round;
  }
}

// Dirty-exempt ranges survive resets (the coverage map contract) and are
// excluded from the exempt-free digest.
TEST(FuzzSnapshot, ExemptRangeSurvivesReset) {
  Machine m;
  m.load(assemble_str(workloads::fib_program(4)));
  m.memory().set_dirty_exempt(0x6f000000, 0x11000);
  const std::uint64_t d_no_exempt = m.memory().digest(false);
  const auto snap = m.take_snapshot();

  m.memory().write(0x6f000100, 0xDEAD, 8);
  ASSERT_EQ(m.run(), StopReason::Exited);
  m.reset_to_snapshot(snap);

  // Exempt page kept its value through the reset; non-exempt digest is
  // back to the snapshot state.
  EXPECT_EQ(m.memory().read(0x6f000100, 8), 0xDEADu);
  EXPECT_EQ(m.memory().digest(false), d_no_exempt);
}

// Snapshot/reset across an Exited stop: stop reason, exit code and
// captured output must rewind too.
TEST(FuzzSnapshot, ProcessStateRewinds) {
  const auto bin = assemble_str(R"(
    .data
msg: .ascii "hi\n"
    .text
    .globl _start
_start:
    li a0, 1
    la a1, msg
    li a2, 3
    li a7, 64
    ecall
    li a0, 7
    li a7, 93
    ecall
)");
  Machine m;
  m.load(bin);
  const auto snap = m.take_snapshot();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(m.run(), StopReason::Exited);
    EXPECT_EQ(m.exit_code(), 7);
    EXPECT_EQ(m.output(), "hi\n") << "output must not accumulate";
    m.reset_to_snapshot(snap);
    EXPECT_EQ(m.last_stop(), StopReason::Running);
    EXPECT_EQ(m.output(), "");
  }
}

}  // namespace
