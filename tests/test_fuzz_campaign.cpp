// The campaign loop end-to-end: coverage-guided search must find the
// seeded ebreak behind a staged magic compare, triage it with a
// postmortem, and keep per-worker metrics in their own scoped namespaces.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/assembler.hpp"
#include "fuzz/fuzz.hpp"
#include "obs/metrics.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;

symtab::Symtab target_binary(const std::string& magic) {
  return assembler::assemble(workloads::fuzz_target_program(magic));
}

fuzz::CampaignOptions fast_opts(unsigned workers = 1) {
  fuzz::CampaignOptions o;
  o.workers = workers;
  o.max_execs = 300000;
  o.batch = 16;
  o.seed = 42;
  return o;
}

TEST(FuzzCampaign, FindsSeededBugThroughStagedCompares) {
  fuzz::Campaign c(target_binary("RV"), fast_opts());
  const auto r = c.run();

  ASSERT_TRUE(c.target().trap_entries == 0);
  ASSERT_TRUE(r.found_crash())
      << "budget " << r.execs << " execs, corpus " << r.corpus_size
      << ", edges " << r.edges_covered;
  const fuzz::CrashReport& cr = r.crashes.front();
  EXPECT_EQ(cr.reason, emu::StopReason::Breakpoint);
  ASSERT_GE(cr.input.size(), 2u);
  EXPECT_EQ(cr.input[0], 'R');
  EXPECT_EQ(cr.input[1], 'V');
  EXPECT_FALSE(cr.postmortem.empty());
  EXPECT_NE(cr.postmortem.find("ebreak"), std::string::npos)
      << cr.postmortem;
  EXPECT_GT(cr.found_at_exec, 0u);
  EXPECT_LE(cr.found_at_exec, r.execs);
}

TEST(FuzzCampaign, CoverageCurveRises) {
  auto opts = fast_opts();
  opts.max_execs = 40000;
  opts.stop_on_crash = false;
  fuzz::Campaign c(target_binary("XYZQ"), opts);
  const auto r = c.run();

  ASSERT_GE(r.coverage_curve.size(), 2u)
      << "search never found anything novel after the seed";
  for (std::size_t i = 1; i < r.coverage_curve.size(); ++i) {
    EXPECT_LE(r.coverage_curve[i - 1].first, r.coverage_curve[i].first);
    EXPECT_LE(r.coverage_curve[i - 1].second, r.coverage_curve[i].second);
  }
  EXPECT_GT(r.coverage_curve.back().second, r.coverage_curve.front().second);
  EXPECT_EQ(r.coverage_curve.back().second, r.edges_covered);
  EXPECT_GT(r.corpus_size, 1u);
}

TEST(FuzzCampaign, MultiWorkerShardsAndStillFindsTheBug) {
  fuzz::Campaign c(target_binary("RV"), fast_opts(2));
  const auto r = c.run();
  ASSERT_TRUE(r.found_crash());

  // Per-worker counters live in their own namespaces and sum to the
  // campaign total.
  const auto& reg = obs::Registry::instance();
  const std::uint64_t w0 = reg.value("rvdyn.fuzz.w0.execs");
  const std::uint64_t w1 = reg.value("rvdyn.fuzz.w1.execs");
  EXPECT_EQ(w0 + w1, r.execs);
  EXPECT_GT(w0, 0u);  // worker 0 at least ran the seed calibration
}

// Back-to-back campaigns must not accumulate worker counters (the scoped
// registry reset) and must not leak coverage state between instances.
TEST(FuzzCampaign, RepeatCampaignsStartClean) {
  const auto bin = target_binary("RV");
  std::uint64_t execs_per_run[2];
  std::uint64_t found_at[2];
  for (int i = 0; i < 2; ++i) {
    fuzz::Campaign c(bin, fast_opts());
    const auto r = c.run();
    ASSERT_TRUE(r.found_crash()) << "run " << i;
    execs_per_run[i] = r.execs;
    found_at[i] = r.crashes.front().found_at_exec;
    EXPECT_EQ(obs::Registry::instance().value("rvdyn.fuzz.w0.execs"),
              r.execs)
        << "scoped reset failed: counters accumulated across campaigns";
  }
  // Determinism: same binary, same seed, fresh campaign — same search.
  EXPECT_EQ(execs_per_run[0], execs_per_run[1]);
  EXPECT_EQ(found_at[0], found_at[1]);
}

TEST(FuzzCampaign, ScopedViewIsolatesNamespaces) {
  obs::ScopedView a("fuzztest.a"), b("fuzztest.b");
  const auto ca = a.counter("hits");
  const auto cb = b.counter("hits");
  ca.add(3);
  cb.add(5);
  EXPECT_EQ(a.value("hits"), 3u);
  EXPECT_EQ(b.value("hits"), 5u);
  a.reset();
  EXPECT_EQ(a.value("hits"), 0u);
  EXPECT_EQ(b.value("hits"), 5u) << "prefix reset bled into a sibling";
}

TEST(FuzzCampaign, RejectsTargetWithoutContractSymbols) {
  EXPECT_THROW(
      fuzz::Campaign(assembler::assemble(workloads::fib_program(5))),
      rvdyn::Error);
}

}  // namespace
