// Shadow-stack oracle acceptance: StackWalker::walk agrees frame-by-frame
// with the emulator's ground-truth call stack at randomized stop points
// over real workloads — including mid-prologue, mid-epilogue and leaf pcs,
// since stops are drawn uniformly from the whole retirement trace.
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace rvdyn;

void expect_clean(const check::ShadowStackReport& rep) {
  for (const auto& d : rep.divergences)
    ADD_FAILURE() << "[" << d.subject << " step=" << d.seed << "] " << d.detail;
  EXPECT_EQ(rep.divergence_count, 0u);
}

TEST(ShadowStack, MatmulTwoHundredRandomStops) {
  check::ShadowStackOptions opts;
  opts.stops = 200;
  const auto rep =
      check::run_shadow_stack("matmul", workloads::matmul_program(10, 3), opts);
  expect_clean(rep);
  EXPECT_EQ(rep.stops, 200u);
  EXPECT_GT(rep.frames_compared, 200u);
  EXPECT_GE(rep.max_depth, 2u);
}

TEST(ShadowStack, SortTwoHundredRandomStops) {
  check::ShadowStackOptions opts;
  opts.stops = 200;
  const auto rep =
      check::run_shadow_stack("sort", workloads::sort_program(96), opts);
  expect_clean(rep);
  EXPECT_EQ(rep.stops, 200u);
  EXPECT_GT(rep.frames_compared, 200u);
}

TEST(ShadowStack, CallChurnWalkAtEveryRetiredInstruction) {
  // Exhaustive: a walk after every instruction covers every prologue and
  // epilogue offset the program ever occupies.
  check::ShadowStackOptions opts;
  opts.walk_every_step = true;
  const auto rep = check::run_shadow_stack(
      "call_churn", workloads::call_churn_program(2), opts);
  expect_clean(rep);
  EXPECT_EQ(rep.stops, rep.steps);
  EXPECT_GE(rep.max_depth, 3u);
}

TEST(ShadowStack, FibRecursionDepth) {
  check::ShadowStackOptions opts;
  opts.stops = 200;
  const auto rep =
      check::run_shadow_stack("fib", workloads::fib_program(12), opts);
  expect_clean(rep);
  EXPECT_GE(rep.max_depth, 8u);  // recursion actually went deep
}

TEST(ShadowStack, DifferentSeedsDifferentStopsStillClean) {
  for (const std::uint64_t seed : {0x1ULL, 0xdecafULL}) {
    check::ShadowStackOptions opts;
    opts.seed = seed;
    opts.stops = 64;
    const auto rep = check::run_shadow_stack(
        "dispatch", workloads::dispatch_program(40), opts);
    expect_clean(rep);
  }
}

}  // namespace
