# Builds the tree once with -DRVDYN_SANITIZE=address and runs the
# snapshot-fuzzing suites under AddressSanitizer. The fuzz engine's hot
# path is built from raw host pointers — the snapshot's per-page copies,
# the JIT's read/write TLB page pointers that must be flushed when a reset
# drops pages, and the 64 KiB coverage-map read-back — so a stale pointer
# anywhere in the reset cycle is a heap-use-after-free ASan will catch.
# Run via
#   cmake -P tests/asan_fuzz_check.cmake
# (registered as the `asan_fuzz_suite` ctest from non-sanitized builds).
#
# Variables (all optional, -D before -P):
#   SOURCE_DIR  repo root (default: parent of this script)
#   BINARY_DIR  nested build dir (default: ${SOURCE_DIR}/build-asan-fuzz)
#   JOBS        parallel build jobs (default: 4)

if(NOT SOURCE_DIR)
  get_filename_component(SOURCE_DIR ${CMAKE_CURRENT_LIST_DIR} DIRECTORY)
endif()
if(NOT BINARY_DIR)
  set(BINARY_DIR ${SOURCE_DIR}/build-asan-fuzz)
endif()
if(NOT JOBS)
  set(JOBS 4)
endif()

message(STATUS "asan-fuzz check: configuring ${BINARY_DIR} with -DRVDYN_SANITIZE=address")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DRVDYN_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan-fuzz check: configure failed")
endif()

set(targets
  test_fuzz_snapshot
  test_fuzz_coverage
  test_fuzz_campaign)

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} -j ${JOBS} --target ${targets}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan-fuzz check: build failed with RVDYN_SANITIZE=address")
endif()

foreach(t ${targets})
  message(STATUS "asan-fuzz check: running ${t}")
  execute_process(
    COMMAND ${BINARY_DIR}/tests/${t}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "asan-fuzz check: ${t} failed under AddressSanitizer")
  endif()
endforeach()

message(STATUS "asan-fuzz check: fuzzing suites clean under ASan")
