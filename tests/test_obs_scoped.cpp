// Registry namespace scoping: prefix reset and the ScopedView facade —
// per-experiment counters must neither collide with nor outlive their
// campaign while the rest of the registry keeps accumulating.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace {

using namespace rvdyn;
using obs::MetricKind;
using obs::Registry;

TEST(ObsScoped, PrefixResetLeavesSiblingsAlone) {
  auto& r = Registry::instance();
  const auto a = r.register_metric("scoped.alpha.n", MetricKind::Counter);
  const auto b = r.register_metric("scoped.beta.n", MetricKind::Counter);
  const auto g = r.register_metric("scoped.alpha.g", MetricKind::Gauge);
  r.add(a, 7);
  r.add(b, 9);
  r.set_gauge(g, 11);

  r.reset("scoped.alpha.");
  EXPECT_EQ(r.value("scoped.alpha.n"), 0u);
  EXPECT_EQ(r.value("scoped.alpha.g"), 0u);
  EXPECT_EQ(r.value("scoped.beta.n"), 9u);
  r.reset("scoped.");
  EXPECT_EQ(r.value("scoped.beta.n"), 0u);
}

// A prefix is a raw string match, not a dotted-path match: resetting
// "pfx.a" must not clear "pfx.ab" unless the caller includes the dot.
TEST(ObsScoped, PrefixIsLiteral) {
  auto& r = Registry::instance();
  r.add(r.register_metric("pfx.a.n", MetricKind::Counter), 1);
  r.add(r.register_metric("pfx.ab.n", MetricKind::Counter), 2);
  r.reset("pfx.a.");
  EXPECT_EQ(r.value("pfx.a.n"), 0u);
  EXPECT_EQ(r.value("pfx.ab.n"), 2u);
}

TEST(ObsScoped, PrefixSnapshotFiltersAndSorts) {
  auto& r = Registry::instance();
  r.reset("snapview.");
  r.add(r.register_metric("snapview.z", MetricKind::Counter), 1);
  r.add(r.register_metric("snapview.a", MetricKind::Counter), 2);
  r.add(r.register_metric("othersnap.x", MetricKind::Counter), 3);

  const auto samples = r.snapshot("snapview.");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "snapview.a");
  EXPECT_EQ(samples[0].value, 2u);
  EXPECT_EQ(samples[1].name, "snapview.z");
}

TEST(ObsScoped, ViewQualifiesCountersGaugesHistograms) {
  obs::ScopedView v("viewtest.w3");
  EXPECT_EQ(v.qualify("execs"), "viewtest.w3.execs");

  v.counter("execs").add(4);
  v.gauge("depth").set(17);
  const auto h = v.histogram("lat");
  h.record(0);
  h.record(5);
  h.record(5000);

  EXPECT_EQ(v.value("execs"), 4u);
  EXPECT_EQ(v.value("depth"), 17u);
  const auto hs = v.histogram_snapshot("lat");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_EQ(hs.sum, 5005u);
  EXPECT_EQ(hs.max, 5000u);

  // The view's reset clears its whole subtree — histogram components too.
  v.reset();
  EXPECT_EQ(v.value("execs"), 0u);
  EXPECT_EQ(v.histogram_snapshot("lat").count, 0u);
}

TEST(ObsScoped, TwoViewsOverSamePrefixShareSlots) {
  obs::ScopedView v1("viewshare"), v2("viewshare");
  v1.counter("n").add(2);
  v2.counter("n").add(3);
  EXPECT_EQ(v1.value("n"), 5u);
  EXPECT_EQ(v2.snapshot().size(), v1.snapshot().size());
}

}  // namespace
