// PatchAPI tests: static binary rewriting end-to-end. Programs are
// assembled, instrumented, rewritten, re-loaded and executed on the
// emulator; checks cover behaviour preservation, counter correctness at
// every point type, the displacement-strategy ladder (§3.1.2) and the
// trap-table worst case.
#include <gtest/gtest.h>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"

namespace {

using namespace rvdyn;
using codegen::increment;
using emu::Machine;
using emu::StopReason;
using patch::BinaryEditor;
using patch::PointType;

int run_binary(const symtab::Symtab& bin, Machine* out_machine = nullptr,
               std::uint64_t max_steps = 100'000'000) {
  Machine local;
  Machine& m = out_machine ? *out_machine : local;
  m.load(bin);
  const StopReason r = m.run(max_steps);
  EXPECT_EQ(static_cast<int>(r), static_cast<int>(StopReason::Exited))
      << "stopped at pc=0x" << std::hex << m.stop_pc();
  return m.exit_code();
}

// Run a rewritten binary that may contain trap springboards: handle
// Breakpoint stops by consulting the trap table (what ProcControlAPI's
// runtime does for the paper's §3.1.2 worst case).
int run_with_traps(const symtab::Symtab& bin,
                   const std::vector<patch::TrapEntry>& traps, Machine* mp,
                   std::uint64_t max_steps = 100'000'000) {
  Machine& m = *mp;
  m.load(bin);
  while (true) {
    const StopReason r = m.run(max_steps);
    if (r == StopReason::Exited) return m.exit_code();
    if (r != StopReason::Breakpoint) {
      ADD_FAILURE() << "unexpected stop " << static_cast<int>(r) << " at 0x"
                    << std::hex << m.stop_pc();
      return -1;
    }
    bool redirected = false;
    for (const auto& t : traps)
      if (t.from == m.pc()) {
        m.set_pc(t.to);
        redirected = true;
        break;
      }
    if (!redirected) {
      ADD_FAILURE() << "trap with no table entry at 0x" << std::hex << m.pc();
      return -1;
    }
  }
}

constexpr const char* kCallLoop = R"(
    .globl _start
    .globl work
_start:
    li s0, 0          # i
    li s1, 10
loop:
    mv a0, s0
    call work
    addi s0, s0, 1
    blt s0, s1, loop
    mv a0, s2         # accumulated result
    andi a0, a0, 255
    li a7, 93
    ecall

work:
    addi sp, sp, -16
    sd ra, 8(sp)
    slli a0, a0, 1
    add s2, s2, a0
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
)";
// sum of 2*i for i in 0..9 = 90

TEST(Patch, FunctionEntryCounter) {
  auto st = assembler::assemble(kCallLoop);
  const int base_exit = run_binary(st);
  ASSERT_EQ(base_exit, 90);

  BinaryEditor editor(st);
  const auto counter = editor.alloc_var("calls");
  const auto* f = editor.code().function_named("work");
  ASSERT_NE(f, nullptr);
  editor.insert_at(f->entry(), PointType::FuncEntry, increment(counter));
  auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);  // behaviour preserved
  EXPECT_EQ(m.memory().read(counter.addr, 8), 10u);
  EXPECT_EQ(editor.stats().relocated_functions, 1u);
  EXPECT_EQ(editor.stats().snippets_inserted, 1u);
}

TEST(Patch, FunctionExitCounterMatchesEntry) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto entries = editor.alloc_var("entries");
  const auto exits = editor.alloc_var("exits");
  const auto* f = editor.code().function_named("work");
  editor.insert_at(f->entry(), PointType::FuncEntry, increment(entries));
  editor.insert_at(f->entry(), PointType::FuncExit, increment(exits));
  auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  EXPECT_EQ(m.memory().read(entries.addr, 8), 10u);
  EXPECT_EQ(m.memory().read(exits.addr, 8), 10u);
}

TEST(Patch, BasicBlockCounters) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto blocks = editor.alloc_var("blocks");
  const auto* f = editor.code().function_named("work");
  editor.insert_at(f->entry(), PointType::BlockEntry, increment(blocks));
  auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  // work is a single block, executed 10 times.
  EXPECT_EQ(m.memory().read(blocks.addr, 8),
            10u * f->blocks().size());
}

TEST(Patch, CallSiteCounter) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto calls = editor.alloc_var("callsites");
  const auto* f = editor.code().function_named("_start");
  editor.insert_at(f->entry(), PointType::CallSite, increment(calls));
  auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  EXPECT_EQ(m.memory().read(calls.addr, 8), 10u);
}

TEST(Patch, LoopBackedgeCounter) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto backs = editor.alloc_var("backedges");
  const auto* f = editor.code().function_named("_start");
  editor.insert_at(f->entry(), PointType::LoopBackedge, increment(backs));
  auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  // The loop runs 10 iterations: 9 back edges.
  EXPECT_EQ(m.memory().read(backs.addr, 8), 9u);
}

TEST(Patch, LoopEntryCounterFiresOnce) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto entries = editor.alloc_var("loopentries");
  const auto* f = editor.code().function_named("_start");
  editor.insert_at(f->entry(), PointType::LoopEntry, increment(entries));
  auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  EXPECT_EQ(m.memory().read(entries.addr, 8), 1u);
}

TEST(Patch, EdgeInstrumentationTakenVsNotTaken) {
  const char* src = R"(
    .globl _start
_start:
    li s0, 0
    li s1, 0          # taken counter mirror (computed by program: none)
    li t0, 0          # i
    li t1, 20
loop:
    andi t2, t0, 1
    beqz t2, even
    addi s0, s0, 1    # odd path
even:
    addi t0, t0, 1
    blt t0, t1, loop
    mv a0, s0
    li a7, 93
    ecall
)";
  auto st = assembler::assemble(src);
  ASSERT_EQ(run_binary(st), 10);

  BinaryEditor editor(st);
  const auto* f = editor.code().function_named("_start");
  // Instrument the beqz taken edge (to `even`) specifically.
  const auto points = patch::find_points(*f, PointType::Edge);
  const auto taken_var = editor.alloc_var("taken");
  bool found = false;
  for (const auto& p : points) {
    const auto* b = f->block_at(p.block);
    if (!b || b->insns().empty()) continue;
    if (b->last().insn.mnemonic() == isa::Mnemonic::beq) {
      for (const auto& e : b->succs()) {
        if (e.type == parse::EdgeType::Taken && e.target == p.aux) {
          editor.insert(p, increment(taken_var));
          found = true;
        }
      }
    }
  }
  ASSERT_TRUE(found);
  auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 10);
  // beqz taken on even i: 10 of 20 iterations.
  EXPECT_EQ(m.memory().read(taken_var.addr, 8), 10u);
}

TEST(Patch, JumpTableFunctionSurvivesRewriting) {
  const char* src = R"(
    .rodata
    .align 3
table:
    .dword case0
    .dword case1
    .dword case2
    .text
    .globl _start
    .globl dispatch
_start:
    li s0, 0    # selector
    li s1, 0    # sum
dloop:
    mv a0, s0
    call dispatch
    add s1, s1, a0
    addi s0, s0, 1
    li t0, 3
    blt s0, t0, dloop
    mv a0, s1         # 10+20+30 = 60
    li a7, 93
    ecall
dispatch:
    li t0, 3
    bgeu a0, t0, ddefault
    slli t1, a0, 3
    la t2, table
    add t1, t1, t2
    ld t1, 0(t1)
    jr t1
case0: li a0, 10
       ret
case1: li a0, 20
       ret
case2: li a0, 30
       ret
ddefault:
    li a0, 99
    ret
)";
  auto st = assembler::assemble(src);
  ASSERT_EQ(run_binary(st), 60);

  BinaryEditor editor(st);
  const auto counter = editor.alloc_var("dispatches");
  const auto* f = editor.code().function_named("dispatch");
  ASSERT_NE(f, nullptr);
  editor.insert_at(f->entry(), PointType::FuncEntry, increment(counter));
  auto rewritten = editor.commit();

  // The jump table still targets original addresses; springboards at the
  // indirect-jump targets must carry control back into relocated code.
  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 60);
  EXPECT_EQ(m.memory().read(counter.addr, 8), 3u);
}

TEST(Patch, SpillBaselineStillCorrect) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  editor.set_use_dead_registers(false);  // x86-style always-spill baseline
  const auto counter = editor.alloc_var("c");
  const auto* f = editor.code().function_named("work");
  editor.insert_at(f->entry(), PointType::BlockEntry, increment(counter));
  auto rewritten = editor.commit();

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  EXPECT_EQ(m.memory().read(counter.addr, 8), 10u);
  EXPECT_GT(editor.stats().gen.scratch_spilled, 0u);
}

TEST(Patch, DisplacementJalIsDefault) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto c = editor.alloc_var("c");
  const auto* f = editor.code().function_named("work");
  editor.insert_at(f->entry(), PointType::FuncEntry, increment(c));
  editor.commit();
  // Patch area is ~1MiB away: jal reaches it; c.j (±2KiB) does not.
  EXPECT_EQ(editor.stats().entry_jal, 1u);
  EXPECT_EQ(editor.stats().entry_trap, 0u);
}

TEST(Patch, DisplacementFarBaseUsesAuipcJalr) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  editor.set_patch_base(0x40000000, 0x40100000);  // ~1GiB away: beyond jal
  const auto c = editor.alloc_var("c");
  const auto* f = editor.code().function_named("work");
  editor.insert_at(f->entry(), PointType::FuncEntry, increment(c));
  auto rewritten = editor.commit();
  EXPECT_EQ(editor.stats().entry_auipc_jalr, 1u);

  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  EXPECT_EQ(m.memory().read(c.addr, 8), 10u);
}

TEST(Patch, DisplacementTrapWorstCase) {
  // A 4-byte function (single c.jr + c.something? here: 2-byte ret after a
  // 2-byte add) that is too small for jal and has a far patch base: the
  // rewriter must fall back to a trap springboard (paper §3.1.2).
  const char* src = R"(
    .globl _start
    .globl tiny
_start:
    li s0, 0
    li s1, 5
tloop:
    mv a0, s0
    call tiny
    add s1, s1, a0
    addi s0, s0, 1
    li t0, 5
    blt s0, t0, tloop
    mv a0, s1        # 5 + (1+2+3+4+5) = 20
    li a7, 93
    ecall
tiny:
    addi a0, a0, 1
    ret
)";
  auto st = assembler::assemble(src);
  ASSERT_EQ(run_binary(st), 20);

  BinaryEditor editor(st);
  editor.set_patch_base(0x40000000, 0x40100000);  // force far target
  const auto c = editor.alloc_var("c");
  const auto* f = editor.code().function_named("tiny");
  ASSERT_NE(f, nullptr);
  // tiny = c.addi (2B) + c.jr (2B): 4-byte budget, too small for the
  // 8-byte auipc+jalr pair and out of jal range.
  ASSERT_LT(f->extent_end() - f->entry(), 8u);
  editor.insert_at(f->entry(), PointType::FuncEntry, increment(c));
  auto rewritten = editor.commit();
  EXPECT_EQ(editor.stats().entry_trap, 1u);
  ASSERT_FALSE(editor.trap_table().empty());

  Machine m;
  EXPECT_EQ(run_with_traps(rewritten, editor.trap_table(), &m), 20);
  EXPECT_EQ(m.memory().read(c.addr, 8), 5u);
}

TEST(Patch, TrapSectionRoundTrip) {
  // `tiny` (4 bytes, far patch base) forces the trap springboard.
  const char* src = R"(
    .globl _start
    .globl tiny
_start:
    call tiny
    li a7, 93
    ecall
tiny:
    addi a0, a0, 1
    ret
)";
  auto st = assembler::assemble(src);
  BinaryEditor editor(st);
  editor.set_patch_base(0x40000000, 0x40100000);
  const auto c = editor.alloc_var("c");
  editor.insert_at(editor.code().function_named("tiny")->entry(),
                   PointType::FuncEntry, increment(c));
  auto rewritten = editor.commit();
  ASSERT_FALSE(editor.trap_table().empty());
  const auto* sec = rewritten.find_section(".rvdyn.traps");
  ASSERT_NE(sec, nullptr);
  const auto parsed = BinaryEditor::parse_trap_section(sec->data);
  ASSERT_EQ(parsed.size(), editor.trap_table().size());
  EXPECT_EQ(parsed[0].from, editor.trap_table()[0].from);
  EXPECT_EQ(parsed[0].to, editor.trap_table()[0].to);
}

TEST(Patch, MultipleSnippetsAtOnePointRunInOrder) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto v = editor.alloc_var("v");
  const auto* f = editor.code().function_named("work");
  // v = (v + 1) * 2 per entry; after 10 entries starting at 0: 2046.
  editor.insert_at(f->entry(), PointType::FuncEntry, increment(v));
  editor.insert_at(f->entry(), PointType::FuncEntry,
                   codegen::assign(v, codegen::binary(codegen::BinOp::Mul,
                                                      codegen::var_expr(v),
                                                      codegen::constant(2))));
  auto rewritten = editor.commit();
  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  EXPECT_EQ(m.memory().read(v.addr, 8), 2046u);
}

TEST(Patch, RewrittenElfSurvivesDiskRoundTrip) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto c = editor.alloc_var("c");
  editor.insert_at(editor.code().function_named("work")->entry(),
                   PointType::FuncEntry, increment(c));
  auto rewritten = editor.commit();

  const auto image = rewritten.write();
  const auto reloaded = symtab::Symtab::read(image);
  Machine m;
  EXPECT_EQ(run_binary(reloaded, &m), 90);
  EXPECT_EQ(m.memory().read(c.addr, 8), 10u);
  // The variable symbol is findable in the rewritten binary.
  ASSERT_NE(reloaded.find_symbol("rvdyn$c"), nullptr);
  EXPECT_EQ(reloaded.find_symbol("rvdyn$c")->value, c.addr);
}

TEST(Patch, InstrumentingEveryFunction) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto c = editor.alloc_var("all");
  for (const auto& [entry, f] : editor.code().functions())
    editor.insert_at(entry, PointType::FuncEntry, increment(c));
  auto rewritten = editor.commit();
  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  EXPECT_EQ(m.memory().read(c.addr, 8), 11u);  // _start once + work 10x
}

TEST(Patch, CommitTwiceThrows) {
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto c = editor.alloc_var("c");
  editor.insert_at(editor.code().function_named("work")->entry(),
                   PointType::FuncEntry, increment(c));
  editor.commit();
  EXPECT_THROW(editor.commit(), Error);
}

TEST(Patch, ConditionalSnippetAtEntry) {
  // Count only calls with a0 >= 5 (predicated instrumentation).
  auto st = assembler::assemble(kCallLoop);
  BinaryEditor editor(st);
  const auto c = editor.alloc_var("big");
  const auto* f = editor.code().function_named("work");
  editor.insert_at(
      f->entry(), PointType::FuncEntry,
      codegen::if_then(codegen::binary(codegen::BinOp::GeS,
                                       codegen::read_reg(isa::a0),
                                       codegen::constant(5)),
                       increment(c)));
  auto rewritten = editor.commit();
  Machine m;
  EXPECT_EQ(run_binary(rewritten, &m), 90);
  EXPECT_EQ(m.memory().read(c.addr, 8), 5u);  // a0 in 5..9
}

}  // namespace
