# Builds the tree once with -DRVDYN_SANITIZE=address and runs the JIT
# suites under AddressSanitizer — the tier juggles raw code arenas,
# patchable jump sites, and cross-block chain pointers, exactly the places
# where an eviction leaving a stale edge would read or execute freed
# memory. The threaded backend's session loop and the shared front-end run
# fully instrumented; the x64 backend's emitted code itself is opaque to
# ASan but every C++ path around it (emission, chaining, unchaining,
# dispatch, drop) is checked. Run via
#   cmake -P tests/asan_jit_check.cmake
# (registered as the `asan_jit_suite` ctest from non-sanitized builds).
#
# Variables (all optional, -D before -P):
#   SOURCE_DIR  repo root (default: parent of this script)
#   BINARY_DIR  nested build dir (default: ${SOURCE_DIR}/build-asan-jit)
#   JOBS        parallel build jobs (default: 4)

if(NOT SOURCE_DIR)
  get_filename_component(SOURCE_DIR ${CMAKE_CURRENT_LIST_DIR} DIRECTORY)
endif()
if(NOT BINARY_DIR)
  set(BINARY_DIR ${SOURCE_DIR}/build-asan-jit)
endif()
if(NOT JOBS)
  set(JOBS 4)
endif()

message(STATUS "asan-jit check: configuring ${BINARY_DIR} with -DRVDYN_SANITIZE=address")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DRVDYN_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan-jit check: configure failed")
endif()

set(targets
  test_jit
  test_jit_invalidate
  test_check_jit)

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR} -j ${JOBS} --target ${targets}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan-jit check: build failed with RVDYN_SANITIZE=address")
endif()

foreach(t ${targets})
  message(STATUS "asan-jit check: running ${t}")
  execute_process(
    COMMAND ${BINARY_DIR}/tests/${t}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "asan-jit check: ${t} failed under AddressSanitizer")
  endif()
endforeach()

message(STATUS "asan-jit check: JIT suites clean under ASan")
