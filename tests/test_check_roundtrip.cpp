// Round-trip oracle acceptance (decode → encode → decode is the identity
// over random 32-bit words and the exhaustive compressed space), plus
// pinned regressions for the three encode-loss families the fuzzer
// originally flushed out: fence fm/pred/succ, atomic aq/rl, and the RVC
// HINT space (c.nop and friends) that compress() refused to reproduce.
#include <gtest/gtest.h>

#include <vector>

#include "assembler/assembler.hpp"
#include "check/check.hpp"
#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "symtab/symtab.hpp"

namespace {

using namespace rvdyn;
using isa::Decoder;
using isa::Instruction;

std::uint32_t reencode(const Decoder& dec, std::uint32_t word) {
  Instruction insn;
  EXPECT_TRUE(dec.decode32(word, &insn)) << std::hex << word;
  std::vector<isa::Operand> ops;
  for (unsigned i = 0; i < insn.num_operands(); ++i)
    ops.push_back(insn.operand(i));
  return isa::encode32(insn.mnemonic(), ops);
}

TEST(RoundTrip, RandomWordsAndExhaustiveRvcClean) {
  const check::RoundTripReport rep = check::run_roundtrip({});
  for (const auto& d : rep.divergences)
    ADD_FAILURE() << "[" << d.subject << " enc=0x" << std::hex << d.encoding
                  << "] " << d.detail;
  EXPECT_EQ(rep.divergence_count, 0u);
  // No operand-identical encoding aliases either: re-compression is exact.
  EXPECT_EQ(rep.rvc_aliases, 0u);
  EXPECT_GT(rep.decoded32, 40000u);   // random words that decoded
  EXPECT_GT(rep.decoded16, 40000u);   // the whole valid RVC space
}

// Regression: decode accepted any fence fm/pred/succ but captured none of
// it, so every rewritten fence canonicalized to 0x0f (ordering sets lost).
TEST(RoundTrip, FenceOrderingSetsSurviveReencode) {
  const Decoder dec{isa::ExtensionSet(0xffff)};
  const std::uint32_t cases[] = {
      0x0000000f,  // fence (all-zero sets, historical bare form)
      0x0ff0000f,  // fence iorw,iorw — what compilers actually emit
      0x0330000f,  // fence rw,rw
      0x0820000f,  // fence i,r
      0x8330000f,  // fence.tso (fm=1000)
  };
  for (const std::uint32_t w : cases)
    EXPECT_EQ(reencode(dec, w), w) << std::hex << w;

  Instruction insn;
  ASSERT_TRUE(dec.decode32(0x0ff0000f, &insn));
  EXPECT_EQ(insn.to_string(), "fence iorw,iorw");

  // The reserved rd/rs1 fields are now mask-pinned: a word using them is
  // rejected outright instead of being silently canonicalized.
  EXPECT_FALSE(dec.decode32(0x0ff0008f, &insn));  // rd = x1
  EXPECT_FALSE(dec.decode32(0x0ff0800f, &insn));  // rs1 = x1
  // fence.i likewise decodes only in its canonical all-reserved-zero form.
  EXPECT_TRUE(dec.decode32(0x0000100f, &insn));
  EXPECT_FALSE(dec.decode32(0x0010100f, &insn));
}

// Regression: aq/rl (bits 26:25) were neither mask-checked nor captured as
// operands, so rewriting atomics silently weakened their memory ordering.
TEST(RoundTrip, AtomicAqRlBitsSurviveReencode) {
  const Decoder dec{isa::ExtensionSet(0xffff)};
  // Original fuzzer hits: amoadd.d.aq, sc.d.aq, amominu.w.aqrl.
  for (const std::uint32_t w : {0x0796bb2fu, 0x1c9bbdafu, 0xc73c23afu})
    EXPECT_EQ(reencode(dec, w), w) << std::hex << w;

  Instruction insn;
  ASSERT_TRUE(dec.decode32(0xc73c23af, &insn));
  EXPECT_EQ(insn.to_string().substr(0, 13), "amominu.w.aqr");  // .aqrl suffix
  ASSERT_TRUE(dec.decode32(0x1c9bbdaf, &insn));
  EXPECT_NE(insn.to_string().find(".aq"), std::string::npos);
}

// Regression: decode16 accepts the RVC HINT space (c.nop, c.addi x0,
// c.li x0, c.slli64, c.mv x0, shamt-0 shifts) but compress() refused to
// reproduce those bytes, so rewriting a c.nop grew it to four bytes.
TEST(RoundTrip, RvcHintEncodingsRecompressToThemselves) {
  const Decoder dec{isa::ExtensionSet(0xffff)};
  const std::uint16_t cases[] = {
      0x0001,  // c.nop
      0x0005,  // c.addi x0, 1 (HINT)
      0x4001,  // c.li x0, 0 (HINT)
      0x0002,  // c.slli x0, 0 (c.slli64 HINT)
      0x105a,  // c.slli x0, 22 (HINT)
      0x8006,  // c.mv x0, x1 (HINT)
      0x0141,  // c.addi sp, 16 — used to re-compress as its alias c.addi16sp
  };
  for (const std::uint16_t h : cases) {
    Instruction insn;
    ASSERT_TRUE(dec.decode16(h, &insn)) << std::hex << h;
    const auto back = isa::compress(insn);
    ASSERT_TRUE(back.has_value()) << std::hex << h;
    EXPECT_EQ(*back, h) << std::hex << h << " -> " << *back;
  }
}

// The assembler speaks the new forms: ordering suffixes on atomics and
// fence predecessor/successor sets round-trip source -> bytes -> decode.
TEST(RoundTrip, AssemblerEmitsOrderingBits) {
  const symtab::Symtab st = assembler::assemble(R"(
    .globl _start
_start:
    amoswap.w.aqrl a0, a1, (a2)
    lr.d.aq t0, (a2)
    fence rw,rw
    fence
    li a7, 93
    ecall
)");
  const auto* sec = st.section_containing(st.entry);
  ASSERT_NE(sec, nullptr);
  const std::uint8_t* p = sec->data.data() + (st.entry - sec->addr);
  const Decoder dec{isa::ExtensionSet(0xffff)};
  Instruction insn;
  auto word_at = [&](unsigned off) {
    return static_cast<std::uint32_t>(p[off]) |
           (static_cast<std::uint32_t>(p[off + 1]) << 8) |
           (static_cast<std::uint32_t>(p[off + 2]) << 16) |
           (static_cast<std::uint32_t>(p[off + 3]) << 24);
  };
  ASSERT_TRUE(dec.decode32(word_at(0), &insn));
  EXPECT_EQ(insn.to_string(), "amoswap.w.aqrl a0, a1, 0(a2)");
  EXPECT_EQ(word_at(0) & 0x06000000u, 0x06000000u);  // aq|rl set
  ASSERT_TRUE(dec.decode32(word_at(4), &insn));
  EXPECT_EQ(insn.mnemonic(), isa::Mnemonic::lr_d);
  EXPECT_EQ(word_at(4) & 0x06000000u, 0x04000000u);  // aq only
  EXPECT_EQ(word_at(8), 0x0330000fu);                // fence rw,rw
  EXPECT_EQ(word_at(12), 0x0000000fu);               // bare fence unchanged
}

}  // namespace
