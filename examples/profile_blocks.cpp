// Instrumentation-driven basic-block profiling (the paper's performance-
// tool use case): instrument every block of a workload with a counter
// snippet, run the rewritten binary, and print the hot-block table with
// disassembly. The same run is cross-checked against the emulator's own
// per-PC profile, so the tool validates the numbers it prints.
//
// Observability flags:
//   --flamegraph <path>  sample the uninstrumented run with obs::Sampler
//                        and write FlameGraph/speedscope folded stacks
//   --postmortem         print an obs::postmortem_report of the final
//                        machine state (block trace enabled for the run)
#include <cstdio>
#include <optional>
#include <string>

#include "assembler/assembler.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "parse/cfg.hpp"
#include "proccontrol/process.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

int main(int argc, char** argv) {
  std::string flame_path;
  bool postmortem = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--flamegraph" && i + 1 < argc) {
      flame_path = argv[++i];
    } else if (a == "--postmortem") {
      postmortem = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--flamegraph <path>] [--postmortem]\n", argv[0]);
      return 2;
    }
  }

  obs::TraceSink::instance().set_enabled(true);

  const std::string src = workloads::matmul_program(8, 4);
  const symtab::Symtab bin = assembler::assemble(src, {});
  parse::CodeObject co(bin);
  co.parse();

  // Ground truth: emulator-side per-PC profile of the original binary.
  auto truth = proccontrol::Process::launch(bin);
  truth->enable_pc_profile(true);
  if (postmortem) truth->machine().enable_block_trace(true);
  std::optional<obs::Sampler> sampler;
  if (!flame_path.empty()) {
    obs::SamplerOptions sopts;
    sopts.interval = 1021;  // short demo workload: sample densely (prime
                            // interval, see SamplerOptions::interval)
    sampler.emplace(truth->machine(), co, sopts);
  }
  const auto ev0 = truth->continue_run();
  if (ev0.kind != proccontrol::Event::Kind::Exited) {
    std::fprintf(stderr, "uninstrumented run did not exit\n");
    return 1;
  }

  // Instrument every basic block and run the rewritten binary.
  obs::BlockProfiler profiler(bin);
  auto proc = proccontrol::Process::launch(profiler.rewritten());
  proc->install_trap_table(profiler.trap_table());
  const auto ev = proc->continue_run();
  if (ev.kind != proccontrol::Event::Kind::Exited ||
      ev.exit_code != ev0.exit_code) {
    std::fprintf(stderr, "instrumented run diverged (kind=%d exit=%d/%d)\n",
                 static_cast<int>(ev.kind), ev.exit_code, ev0.exit_code);
    return 1;
  }

  const auto hot = profiler.counts(proc->machine());
  if (hot.empty()) {
    std::fprintf(stderr, "no blocks instrumented\n");
    return 1;
  }

  std::printf("hot blocks (%zu instrumented, instret=%llu):\n", hot.size(),
              static_cast<unsigned long long>(proc->machine().instret()));
  std::printf("%-18s %-12s %-20s %s\n", "block", "entries", "function",
              "first insns");
  int rows = 0;
  std::uint64_t total = 0;
  for (const auto& hb : hot) {
    total += hb.count;
    if (rows++ >= 10) continue;  // print the top 10, sum everything
    // Disassemble the first few instructions of the block.
    std::string disas;
    for (const auto& [entry, func] : profiler.code().functions()) {
      const auto* blk = func->block_at(hb.block);
      if (!blk) continue;
      unsigned shown = 0;
      for (const auto& pi : blk->insns()) {
        if (shown++ == 3) {
          disas += "; ...";
          break;
        }
        if (!disas.empty()) disas += "; ";
        disas += pi.insn.to_string();
      }
      break;
    }
    std::printf("0x%-16llx %-12llu %-20s %s\n",
                static_cast<unsigned long long>(hb.block),
                static_cast<unsigned long long>(hb.count), hb.func.c_str(),
                disas.c_str());
  }
  std::printf("total block entries: %llu\n",
              static_cast<unsigned long long>(total));

  // Validate against the emulator profile: exact per-block agreement.
  const auto& pc_prof = truth->pc_profile();
  for (const auto& hb : hot) {
    const auto it = pc_prof.find(hb.block);
    const std::uint64_t emulated = it == pc_prof.end() ? 0 : it->second.hits;
    if (hb.count != emulated) {
      std::fprintf(stderr,
                   "mismatch at block 0x%llx: instrumented=%llu emulated=%llu\n",
                   static_cast<unsigned long long>(hb.block),
                   static_cast<unsigned long long>(hb.count),
                   static_cast<unsigned long long>(emulated));
      return 1;
    }
  }
  if (total == 0) {
    std::fprintf(stderr, "no block entries recorded\n");
    return 1;
  }
  std::printf("emulator cross-check: all %zu blocks agree exactly\n",
              hot.size());

  if (sampler) {
    sampler->detach();
    std::printf("\nsampled profile (%llu samples, interval %llu):\n%s",
                static_cast<unsigned long long>(sampler->samples()),
                static_cast<unsigned long long>(sampler->options().interval),
                sampler->stacks().hot_table_text().c_str());
    if (!sampler->stacks().write_folded(flame_path)) {
      std::fprintf(stderr, "failed to write %s\n", flame_path.c_str());
      return 1;
    }
    std::printf("folded stacks written to %s (feed to flamegraph.pl or "
                "speedscope)\n", flame_path.c_str());
  }

  if (postmortem)
    std::printf("\n%s", obs::postmortem_report(*truth, co).c_str());

  proc->machine().publish_metrics();
  obs::TraceSink::instance().set_enabled(false);
#if RVDYN_OBS_ENABLED
  std::printf("\nmetrics snapshot:\n%s\n",
              obs::Registry::instance().to_json().c_str());
  std::printf("\ntimeline:\n%s", obs::TraceSink::instance().text().c_str());
#endif
  return 0;
}
