// Function tracer: the paper's motivating example ("trace every function
// entry and exit") built as a dynamic-instrumentation tool.
//
// Uses ProcControlAPI breakpoints as trace hooks — entry and exit points
// come from ParseAPI — and prints an indented call trace with arguments
// and return values, like a tiny ltrace for the emulated process.
#include <cstdio>
#include <map>
#include <string>

#include "assembler/assembler.hpp"
#include "parse/cfg.hpp"
#include "patch/point.hpp"
#include "proccontrol/process.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;
using proccontrol::Event;
using proccontrol::Process;

int main() {
  const auto binary = assembler::assemble(workloads::fib_program(6));

  parse::CodeObject co(binary);
  co.parse();

  auto proc = Process::launch(binary);

  // Trace points: every function entry, plus the address of every return
  // instruction (FuncExit points anchor at the returning block).
  std::map<std::uint64_t, std::string> entries, exits;
  for (const auto& [entry, func] : co.functions()) {
    entries[entry] = func->name();
    proc->insert_breakpoint(entry);
    for (const auto& p :
         patch::find_points(*func, patch::PointType::FuncExit)) {
      const auto* block = func->block_at(p.block);
      const std::uint64_t ret_addr = block->last().addr;
      exits[ret_addr] = func->name();
      proc->insert_breakpoint(ret_addr);
    }
  }

  int depth = 0;
  int events = 0;
  while (events++ < 200) {
    const Event ev = proc->continue_run();
    if (ev.kind == Event::Kind::Exited) {
      std::printf("process exited with code %d\n", ev.exit_code);
      return 0;
    }
    if (ev.kind != Event::Kind::Stopped) {
      std::printf("unexpected stop\n");
      return 1;
    }
    if (auto it = entries.find(ev.addr); it != entries.end()) {
      std::printf("%*s-> %s(a0=%llu)\n", depth * 2, "", it->second.c_str(),
                  static_cast<unsigned long long>(proc->get_reg(isa::a0)));
      ++depth;
    }
    if (auto it = exits.find(ev.addr); it != exits.end()) {
      depth = depth > 0 ? depth - 1 : 0;
      std::printf("%*s<- %s = %llu\n", depth * 2, "", it->second.c_str(),
                  static_cast<unsigned long long>(proc->get_reg(isa::a0)));
    }
  }
  std::printf("trace budget exhausted\n");
  return 1;
}
