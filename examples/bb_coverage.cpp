// Basic-block coverage tool: static rewriting with one counter per basic
// block (the paper's "instrument the start of each basic block"
// experiment, turned into a coverage report).
#include <cstdio>
#include <map>

#include "assembler/assembler.hpp"
#include "codegen/snippet.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

int main() {
  // The dispatcher only ever selects cases 0..3; with 7 iterations some
  // table cases run more than others — coverage shows exactly which.
  const auto binary = assembler::assemble(workloads::dispatch_program(7));

  patch::BinaryEditor editor(binary);

  // One distinct counter variable per basic block of every function.
  std::map<std::uint64_t, codegen::Variable> per_block;
  for (const auto& [entry, func] : editor.code().functions()) {
    for (const auto& p :
         patch::find_points(*func, patch::PointType::BlockEntry)) {
      char name[32];
      std::snprintf(name, sizeof(name), "bb_%llx",
                    static_cast<unsigned long long>(p.block));
      const auto v = editor.alloc_var(name);
      per_block[p.block] = v;
      editor.insert(p, codegen::increment(v));
    }
  }
  const auto rewritten = editor.commit();

  emu::Machine m;
  m.load(rewritten);
  m.run();
  std::printf("instrumented run exited with %d\n\n", m.exit_code());

  std::printf("%-12s %-18s %10s   coverage\n", "block", "function", "count");
  unsigned covered = 0;
  for (const auto& [entry, func] : editor.code().functions()) {
    for (const auto& [start, block] : func->blocks()) {
      const auto it = per_block.find(start);
      if (it == per_block.end()) continue;
      const std::uint64_t count = m.memory().read(it->second.addr, 8);
      if (count > 0) ++covered;
      std::printf("0x%-10llx %-18s %10llu   %s\n",
                  static_cast<unsigned long long>(start),
                  func->name().c_str(),
                  static_cast<unsigned long long>(count),
                  count ? "#" : ".");
    }
  }
  std::printf("\n%u of %zu blocks covered\n", covered, per_block.size());
  return 0;
}
