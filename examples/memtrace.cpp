// Memory-access tracer: "trace every memory access" (paper §1) using
// InstructionAPI's operand access information and the emulator's
// per-instruction hook. Reports a load/store histogram per function —
// the analysis half of a cache-simulator front end.
#include <cstdio>
#include <map>
#include <string>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "parse/cfg.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

int main() {
  const auto binary = assembler::assemble(workloads::matmul_program(16, 1));

  parse::CodeObject co(binary);
  co.parse();
  auto func_of = [&](std::uint64_t pc) -> std::string {
    for (const auto& [entry, f] : co.functions())
      if (f->block_containing(pc)) return f->name();
    return "?";
  };

  struct Counts {
    std::uint64_t loads = 0, stores = 0, bytes = 0;
  };
  std::map<std::string, Counts> by_func;

  emu::Machine m;
  m.load(binary);
  m.set_trace([&](std::uint64_t pc, const isa::Instruction& insn) {
    if (!insn.reads_memory() && !insn.writes_memory()) return;
    Counts& c = by_func[func_of(pc)];
    for (unsigned i = 0; i < insn.num_operands(); ++i) {
      const auto& op = insn.operand(i);
      if (!op.is_mem()) continue;
      if (op.reads()) ++c.loads;
      if (op.writes()) ++c.stores;
      c.bytes += op.size;
    }
  });
  m.run();

  std::printf("memory traffic by function (16x16 matmul):\n");
  std::printf("%-12s %12s %12s %12s\n", "function", "loads", "stores",
              "bytes");
  for (const auto& [name, c] : by_func)
    std::printf("%-12s %12llu %12llu %12llu\n", name.c_str(),
                static_cast<unsigned long long>(c.loads),
                static_cast<unsigned long long>(c.stores),
                static_cast<unsigned long long>(c.bytes));
  std::printf("\nexit=%d; expected: matmul dominates with ~2*n^3 loads\n",
              m.exit_code());
  return 0;
}
