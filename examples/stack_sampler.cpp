// Sampling profiler: periodically interrupt the process, walk its call
// stack (StackwalkerAPI), and report where time is spent — the skeleton of
// HPCToolkit-style profiling (paper §2's tool list) on the RISC-V port.
#include <cstdio>
#include <map>
#include <string>

#include "assembler/assembler.hpp"
#include "parse/cfg.hpp"
#include "proccontrol/process.hpp"
#include "stackwalk/stackwalker.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;
using proccontrol::Event;
using proccontrol::Process;

int main() {
  const auto binary = assembler::assemble(workloads::fib_program(18));

  parse::CodeObject co(binary);
  co.parse();
  auto proc = Process::launch(binary);
  stackwalk::StackWalker walker(*proc, co);

  std::map<std::string, unsigned> leaf_samples;
  std::map<unsigned, unsigned> depth_histogram;
  unsigned samples = 0;

  // "Timer" sampling: run a fixed instruction quantum, then interrupt.
  while (true) {
    const Event ev = proc->continue_run(2000);
    if (ev.kind == Event::Kind::Exited) break;
    if (ev.kind != Event::Kind::LimitReached) {
      std::printf("unexpected stop kind=%d\n", static_cast<int>(ev.kind));
      return 1;
    }
    const auto frames = walker.walk();
    if (frames.empty()) continue;
    ++samples;
    leaf_samples[frames[0].func_name.empty() ? "?" : frames[0].func_name]++;
    depth_histogram[static_cast<unsigned>(frames.size())]++;
  }

  std::printf("%u samples of fib(18)\n\n", samples);
  std::printf("flat profile (innermost frame):\n");
  for (const auto& [name, count] : leaf_samples)
    std::printf("  %-12s %5.1f%%  (%u samples)\n", name.c_str(),
                100.0 * count / samples, count);
  std::printf("\nstack depth histogram:\n");
  for (const auto& [depth, count] : depth_histogram)
    std::printf("  depth %2u: %u\n", depth, count);
  return 0;
}
