// Sampling profiler: interrupt the guest every N retired instructions,
// walk its call stack (StackwalkerAPI), and report where time is spent —
// HPCToolkit-style profiling (paper §2's tool list) on the RISC-V port.
//
// The heavy lifting now lives in obs::Sampler, which hooks the emulator's
// retired-instruction counter directly: samples land at exact instret
// boundaries, so the profile below is byte-for-byte reproducible (and
// identical with the JIT tier on or off).
#include <cstdio>
#include <map>
#include <string>

#include "assembler/assembler.hpp"
#include "obs/sampler.hpp"
#include "parse/cfg.hpp"
#include "proccontrol/process.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;
using proccontrol::Event;
using proccontrol::Process;

int main() {
  const auto binary = assembler::assemble(workloads::fib_program(18));

  parse::CodeObject co(binary);
  co.parse();
  auto proc = Process::launch(binary);

  obs::SamplerOptions opts;
  opts.interval = 1999;  // one sample per 1999 retired insns (prime, so
                         // no loop-phase aliasing)
  obs::Sampler sampler(proc->machine(), co, opts);

  const Event ev = proc->continue_run();
  if (ev.kind != Event::Kind::Exited) {
    std::printf("unexpected stop kind=%d\n", static_cast<int>(ev.kind));
    return 1;
  }
  sampler.detach();

  std::printf("%llu samples of fib(18) (interval %llu insns)\n\n",
              static_cast<unsigned long long>(sampler.samples()),
              static_cast<unsigned long long>(opts.interval));
  std::printf("hot functions (self = innermost frame):\n%s",
              sampler.stacks().hot_table_text().c_str());
  std::printf("\nfolded stacks (flamegraph.pl / speedscope input):\n%s",
              sampler.folded().c_str());
  return 0;
}
