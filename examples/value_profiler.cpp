// Value profiler: histogram of the values an argument register takes at a
// function's entry, collected with pure snippet instrumentation (no
// tracing): counters[a0 & mask]++ built from the snippet AST's indexed
// store — the indexed-counter idiom behind value profiling and branch-bias
// tools.
#include <cstdio>

#include "assembler/assembler.hpp"
#include "codegen/snippet.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;
using namespace rvdyn::codegen;

int main() {
  // The dispatcher's selector cycles 0..3; profile its distribution.
  const int iterations = 32;
  const auto binary = assembler::assemble(
      workloads::dispatch_program(iterations));

  patch::BinaryEditor editor(binary);
  const auto* dispatch = editor.code().function_named("dispatch");
  if (!dispatch) return 1;

  // A 16-slot histogram in the patch data area.
  constexpr unsigned kSlots = 16;
  codegen::Variable table = editor.alloc_var("histogram", 8, 0);
  for (unsigned i = 1; i < kSlots; ++i) editor.alloc_var("hist_slot", 8, 0);

  // counters[(a0 & 15)]++ :
  //   slot_addr = table + ((a0 & 15) << 3)
  //   mem[slot_addr] = mem[slot_addr] + 1
  const auto slot_addr = codegen::binary(
      BinOp::Add, constant(static_cast<std::int64_t>(table.addr)),
      codegen::binary(BinOp::Shl,
                codegen::binary(BinOp::And, read_reg(isa::a0),
                          constant(kSlots - 1)),
                constant(3)));
  const auto snip =
      store(slot_addr, codegen::binary(BinOp::Add, load(slot_addr), constant(1)));

  editor.insert_at(dispatch->entry(), patch::PointType::FuncEntry, snip);
  const auto rewritten = editor.commit();

  emu::Machine m;
  m.load(rewritten);
  m.run();
  std::printf("instrumented run exited with %d\n\n", m.exit_code());

  std::printf("value profile of a0 at dispatch() entry (%d calls):\n",
              iterations);
  std::uint64_t total = 0;
  for (unsigned i = 0; i < kSlots; ++i) {
    const std::uint64_t count = m.memory().read(table.addr + 8 * i, 8);
    total += count;
    if (count == 0) continue;
    std::printf("  a0=%2u: %4llu  ", i,
                static_cast<unsigned long long>(count));
    for (std::uint64_t b = 0; b < count; ++b) std::printf("#");
    std::printf("\n");
  }
  std::printf("\n%llu samples total (expected %d)\n",
              static_cast<unsigned long long>(total), iterations);
  return total == static_cast<std::uint64_t>(iterations) ? 0 : 1;
}
