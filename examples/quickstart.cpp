// Quickstart: the end-to-end rvdyn workflow in ~60 lines.
//
//  1. assemble a mutatee (stand-in for a compiled RISC-V binary),
//  2. parse it (SymtabAPI + ParseAPI) and print its functions/CFG summary,
//  3. insert a function-entry counter snippet (CodeGenAPI + PatchAPI),
//  4. execute both versions (emulator substrate) and report the counter.
#include <cstdio>

#include "assembler/assembler.hpp"
#include "codegen/snippet.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

int main() {
  // A small program: 25 calls to `wrapper`, which calls `leaf`.
  const auto binary = assembler::assemble(workloads::call_churn_program(25));
  std::printf("mutatee profile: %s\n",
              isa::isa_string(binary.extensions()).c_str());

  // Parse and show what the analysis sees.
  patch::BinaryEditor editor(binary);
  for (const auto& [entry, func] : editor.code().functions()) {
    std::printf("function %-10s entry=0x%llx blocks=%zu calls=%u returns=%u\n",
                func->name().c_str(),
                static_cast<unsigned long long>(entry),
                func->blocks().size(), func->stats().n_calls,
                func->stats().n_returns);
  }

  // The paper's basic operation: insert (P, AST) — a counter increment at
  // every entry of `wrapper`.
  const auto counter = editor.alloc_var("wrapper_calls");
  const auto* wrapper = editor.code().function_named("wrapper");
  editor.insert_at(wrapper->entry(), patch::PointType::FuncEntry,
                   codegen::increment(counter));
  const auto rewritten = editor.commit();

  // Run the original.
  emu::Machine base;
  base.load(binary);
  base.run();
  std::printf("\noriginal:  exit=%d, %llu instructions\n", base.exit_code(),
              static_cast<unsigned long long>(base.instret()));

  // Run the instrumented version.
  emu::Machine inst;
  inst.load(rewritten);
  inst.run();
  std::printf("rewritten: exit=%d, %llu instructions\n", inst.exit_code(),
              static_cast<unsigned long long>(inst.instret()));
  std::printf("wrapper_calls counter = %llu (expected 25)\n",
              static_cast<unsigned long long>(
                  inst.memory().read(counter.addr, 8)));
  return inst.memory().read(counter.addr, 8) == 25 ? 0 : 1;
}
