// rvdyn-objdump: objdump-style disassembler with CFG annotations.
//
// Demonstrates SymtabAPI + InstructionAPI + ParseAPI as a standalone tool:
// functions, basic-block leaders, edge summaries and jal/jalr
// classifications printed next to each instruction.
//
// Usage:  rvdyn_objdump [file.elf]
// With no argument it disassembles a built-in demo binary.
#include <cstdio>
#include <map>
#include <string>

#include "assembler/assembler.hpp"
#include "parse/cfg.hpp"
#include "parse/dot.hpp"
#include "parse/loops.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

std::string edge_note(const parse::Block& b) {
  std::string out;
  for (const auto& e : b.succs()) {
    if (!out.empty()) out += ", ";
    out += parse::edge_type_name(e.type);
    if (e.target) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "->0x%llx",
                    static_cast<unsigned long long>(e.target));
      out += buf;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool dot = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--dot") dot = true;
    else path = argv[i];
  }
  symtab::Symtab bin;
  if (path) {
    bin = symtab::Symtab::read_file(path);
  } else {
    bin = assembler::assemble(workloads::dispatch_program(8));
    std::printf("(no input file: disassembling the built-in jump-table "
                "demo)\n\n");
  }

  std::printf("profile: %s   entry: 0x%llx\n\n",
              isa::isa_string(bin.extensions()).c_str(),
              static_cast<unsigned long long>(bin.entry));

  parse::CodeObject co(bin);
  co.parse();

  if (dot) {
    // Emit Graphviz: per-function CFGs followed by the call graph.
    for (const auto& [entry, func] : co.functions())
      std::fputs(parse::to_dot(*func).c_str(), stdout);
    std::fputs(parse::callgraph_dot(co).c_str(), stdout);
    return 0;
  }

  for (const auto& [entry, func] : co.functions()) {
    const auto loops = parse::find_loops(*func);
    std::printf("%016llx <%s>:  %zu blocks, %zu loops\n",
                static_cast<unsigned long long>(entry), func->name().c_str(),
                func->blocks().size(), loops.size());
    for (const auto& [start, block] : func->blocks()) {
      std::printf("  ; block 0x%llx  (%s)\n",
                  static_cast<unsigned long long>(start),
                  edge_note(*block).c_str());
      for (const auto& pi : block->insns()) {
        std::string bytes;
        const std::uint32_t raw = pi.insn.raw();
        for (unsigned i = 0; i < pi.insn.length(); ++i) {
          char b[4];
          std::snprintf(b, sizeof(b), "%02x ",
                        static_cast<unsigned>((raw >> (8 * i)) & 0xff));
          bytes += b;
        }
        std::printf("  %8llx:  %-14s %s\n",
                    static_cast<unsigned long long>(pi.addr), bytes.c_str(),
                    pi.insn.to_string().c_str());
      }
    }
    std::printf("\n");
  }

  const auto stats = co.total_stats();
  std::printf("summary: %zu functions, %u blocks, %u insns, %u calls, "
              "%u tail-calls, %u returns, %u jump-tables, %u unresolved\n",
              co.functions().size(), stats.n_blocks, stats.n_insns,
              stats.n_calls, stats.n_tail_calls, stats.n_returns,
              stats.n_jump_tables, stats.n_unresolved);
  return 0;
}
