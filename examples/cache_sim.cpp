// Cache simulator: the paper's §1 "architectural simulation" use case.
//
// Drives a parameterized set-associative data-cache model from the
// emulator's per-instruction trace (every memory operand with its size and
// direction comes from InstructionAPI's access info) and reports hit rates
// for the matmul workload at several cache shapes — a miniature cachegrind
// front end on the rvdyn stack.
#include <cstdio>
#include <vector>

#include "assembler/assembler.hpp"
#include "emu/machine.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

// LRU set-associative cache model.
class Cache {
 public:
  Cache(unsigned size_bytes, unsigned line_bytes, unsigned ways)
      : line_(line_bytes), ways_(ways),
        sets_(size_bytes / line_bytes / ways),
        tags_(static_cast<std::size_t>(sets_) * ways, kInvalid),
        age_(static_cast<std::size_t>(sets_) * ways, 0) {}

  void access(std::uint64_t addr) {
    const std::uint64_t line = addr / line_;
    const unsigned set = static_cast<unsigned>(line % sets_);
    const std::uint64_t tag = line / sets_;
    ++tick_;
    ++accesses_;
    std::uint64_t* base = &tags_[static_cast<std::size_t>(set) * ways_];
    std::uint64_t* ages = &age_[static_cast<std::size_t>(set) * ways_];
    unsigned victim = 0;
    for (unsigned w = 0; w < ways_; ++w) {
      if (base[w] == tag) {
        ++hits_;
        ages[w] = tick_;
        return;
      }
      if (ages[w] < ages[victim]) victim = w;
    }
    base[victim] = tag;  // miss: LRU fill
    ages[victim] = tick_;
  }

  std::uint64_t accesses() const { return accesses_; }
  double hit_rate() const {
    return accesses_ ? 100.0 * static_cast<double>(hits_) /
                           static_cast<double>(accesses_)
                     : 0.0;
  }

 private:
  static constexpr std::uint64_t kInvalid = ~0ULL;
  unsigned line_, ways_, sets_;
  std::vector<std::uint64_t> tags_, age_;
  std::uint64_t tick_ = 0, accesses_ = 0, hits_ = 0;
};

}  // namespace

int main() {
  const int n = 48;  // 48x48 doubles: 18 KiB per matrix
  const auto binary = assembler::assemble(workloads::matmul_program(n, 1));
  std::printf("workload: %dx%d double matmul (3 matrices x %d KiB)\n\n", n, n,
              n * n * 8 / 1024);

  struct Shape {
    const char* name;
    unsigned size, line, ways;
  };
  const Shape shapes[] = {
      {"8 KiB, 64B lines, 2-way", 8 * 1024, 64, 2},
      {"32 KiB, 64B lines, 4-way", 32 * 1024, 64, 4},
      {"32 KiB, 64B lines, 8-way", 32 * 1024, 64, 8},
      {"256 KiB, 64B lines, 8-way", 256 * 1024, 64, 8},
  };

  std::printf("%-28s %12s %10s\n", "D-cache shape", "accesses", "hit rate");
  for (const Shape& shape : shapes) {
    Cache dcache(shape.size, shape.line, shape.ways);
    emu::Machine m;
    m.load(binary);
    m.set_trace([&](std::uint64_t, const isa::Instruction& insn) {
      if (!insn.reads_memory() && !insn.writes_memory()) return;
      for (unsigned i = 0; i < insn.num_operands(); ++i) {
        const auto& op = insn.operand(i);
        if (!op.is_mem()) continue;
        const std::uint64_t addr =
            m.get_x(op.reg.num) + static_cast<std::uint64_t>(op.imm);
        dcache.access(addr);
      }
    });
    if (m.run(500'000'000) != emu::StopReason::Exited) {
      std::printf("workload failed to finish\n");
      return 1;
    }
    std::printf("%-28s %12llu %9.2f%%\n", shape.name,
                static_cast<unsigned long long>(dcache.accesses()),
                dcache.hit_rate());
  }

  std::printf(
      "\nexpected: hit rate climbs with capacity/associativity; the column-"
      "strided\nB-matrix accesses make the small cache thrash.\n");
  return 0;
}
