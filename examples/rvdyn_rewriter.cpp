// rvdyn-rewriter: standalone static binary rewriter (the paper's §3.3
// first-release feature as a command-line tool).
//
// Usage:
//   rvdyn_rewriter <in.elf> <out.elf> [--func=<name>] [--points=entry|exit|bb]
//
// Inserts a profiling counter at the requested points and writes the
// rewritten executable; the counter value is exported as the rvdyn$counter
// symbol. With no arguments, runs a self-demonstration: builds a demo
// binary, rewrites it, executes both, and prints the counter.
#include <cstdio>
#include <cstring>
#include <string>

#include "assembler/assembler.hpp"
#include "codegen/snippet.hpp"
#include "emu/machine.hpp"
#include "patch/editor.hpp"
#include "workloads/workloads.hpp"

using namespace rvdyn;

namespace {

int rewrite(const symtab::Symtab& in, const std::string& out_path,
            const std::string& func, const std::string& points) {
  patch::BinaryEditor editor(in);
  const auto counter = editor.alloc_var("counter");

  patch::PointType type = patch::PointType::FuncEntry;
  if (points == "exit") type = patch::PointType::FuncExit;
  else if (points == "bb") type = patch::PointType::BlockEntry;
  else if (points != "entry") {
    std::fprintf(stderr, "unknown --points value: %s\n", points.c_str());
    return 1;
  }

  unsigned instrumented = 0;
  for (const auto& [entry, f] : editor.code().functions()) {
    if (!func.empty() && f->name() != func) continue;
    editor.insert_at(entry, type, codegen::increment(counter));
    ++instrumented;
  }
  if (instrumented == 0) {
    std::fprintf(stderr, "no function matched '%s'\n", func.c_str());
    return 1;
  }

  const auto rewritten = editor.commit();
  rewritten.write_file(out_path);
  const auto& s = editor.stats();
  std::printf("rewrote %u function(s): %u snippets (%u insns), "
              "springboards: %u c.j / %u jal / %u auipc+jalr / %u trap\n",
              s.relocated_functions, s.snippets_inserted, s.snippet_insns,
              s.entry_cj, s.entry_jal, s.entry_auipc_jalr, s.entry_trap);
  std::printf("counter symbol rvdyn$counter at 0x%llx; wrote %s\n",
              static_cast<unsigned long long>(counter.addr),
              out_path.c_str());
  if (s.entry_trap)
    std::printf("note: trap springboards present — run under a trap-aware "
                "runtime (ProcControlAPI)\n");
  return 0;
}

int self_demo() {
  std::printf("self-demo: instrumenting the fib workload\n");
  const auto bin = assembler::assemble(workloads::fib_program(12));
  const char* tmp = "/tmp/rvdyn_rewriter_demo.elf";
  if (const int rc = rewrite(bin, tmp, "fib", "entry")) return rc;

  const auto rewritten = symtab::Symtab::read_file(tmp);
  emu::Machine base, inst;
  base.load(bin);
  base.run();
  inst.load(rewritten);
  inst.run();
  const auto* sym = rewritten.find_symbol("rvdyn$counter");
  std::printf("original exit=%d, rewritten exit=%d, fib entries counted=%llu\n",
              base.exit_code(), inst.exit_code(),
              static_cast<unsigned long long>(
                  inst.memory().read(sym->value, 8)));
  return base.exit_code() == inst.exit_code() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return self_demo();

  std::string func, points = "entry";
  for (int i = 3; i < argc; ++i) {
    if (!std::strncmp(argv[i], "--func=", 7)) func = argv[i] + 7;
    else if (!std::strncmp(argv[i], "--points=", 9)) points = argv[i] + 9;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }
  try {
    return rewrite(symtab::Symtab::read_file(argv[1]), argv[2], func, points);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
