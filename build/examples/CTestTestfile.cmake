# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_bb_coverage "/root/repo/build/examples/bb_coverage")
set_tests_properties(example_bb_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_sim "/root/repo/build/examples/cache_sim")
set_tests_properties(example_cache_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_function_tracer "/root/repo/build/examples/function_tracer")
set_tests_properties(example_function_tracer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memtrace "/root/repo/build/examples/memtrace")
set_tests_properties(example_memtrace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_blocks "/root/repo/build/examples/profile_blocks")
set_tests_properties(example_profile_blocks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rvdyn_objdump "/root/repo/build/examples/rvdyn_objdump")
set_tests_properties(example_rvdyn_objdump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rvdyn_rewriter "/root/repo/build/examples/rvdyn_rewriter")
set_tests_properties(example_rvdyn_rewriter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stack_sampler "/root/repo/build/examples/stack_sampler")
set_tests_properties(example_stack_sampler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_value_profiler "/root/repo/build/examples/value_profiler")
set_tests_properties(example_value_profiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
