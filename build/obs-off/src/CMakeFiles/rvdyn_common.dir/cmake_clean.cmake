file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_common.dir/common/leb128.cpp.o"
  "CMakeFiles/rvdyn_common.dir/common/leb128.cpp.o.d"
  "librvdyn_common.a"
  "librvdyn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
