file(REMOVE_RECURSE
  "librvdyn_common.a"
)
