# Empty dependencies file for rvdyn_common.
# This may be replaced when dependencies are built.
