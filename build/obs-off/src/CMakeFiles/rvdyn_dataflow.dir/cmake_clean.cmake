file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_dataflow.dir/dataflow/liveness.cpp.o"
  "CMakeFiles/rvdyn_dataflow.dir/dataflow/liveness.cpp.o.d"
  "CMakeFiles/rvdyn_dataflow.dir/dataflow/slicing.cpp.o"
  "CMakeFiles/rvdyn_dataflow.dir/dataflow/slicing.cpp.o.d"
  "CMakeFiles/rvdyn_dataflow.dir/dataflow/stack_height.cpp.o"
  "CMakeFiles/rvdyn_dataflow.dir/dataflow/stack_height.cpp.o.d"
  "CMakeFiles/rvdyn_dataflow.dir/dataflow/summaries.cpp.o"
  "CMakeFiles/rvdyn_dataflow.dir/dataflow/summaries.cpp.o.d"
  "librvdyn_dataflow.a"
  "librvdyn_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
