file(REMOVE_RECURSE
  "librvdyn_dataflow.a"
)
