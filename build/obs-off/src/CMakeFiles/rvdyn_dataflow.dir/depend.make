# Empty dependencies file for rvdyn_dataflow.
# This may be replaced when dependencies are built.
