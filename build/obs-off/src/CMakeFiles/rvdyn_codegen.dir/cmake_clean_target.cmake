file(REMOVE_RECURSE
  "librvdyn_codegen.a"
)
