# Empty dependencies file for rvdyn_codegen.
# This may be replaced when dependencies are built.
