file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_codegen.dir/codegen/codegen.cpp.o"
  "CMakeFiles/rvdyn_codegen.dir/codegen/codegen.cpp.o.d"
  "CMakeFiles/rvdyn_codegen.dir/codegen/snippet.cpp.o"
  "CMakeFiles/rvdyn_codegen.dir/codegen/snippet.cpp.o.d"
  "librvdyn_codegen.a"
  "librvdyn_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
