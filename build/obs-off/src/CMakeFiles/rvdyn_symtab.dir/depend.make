# Empty dependencies file for rvdyn_symtab.
# This may be replaced when dependencies are built.
