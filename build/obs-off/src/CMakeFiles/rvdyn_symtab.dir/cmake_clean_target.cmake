file(REMOVE_RECURSE
  "librvdyn_symtab.a"
)
