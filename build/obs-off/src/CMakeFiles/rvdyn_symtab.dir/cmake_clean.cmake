file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_symtab.dir/symtab/riscv_attrs.cpp.o"
  "CMakeFiles/rvdyn_symtab.dir/symtab/riscv_attrs.cpp.o.d"
  "CMakeFiles/rvdyn_symtab.dir/symtab/symtab.cpp.o"
  "CMakeFiles/rvdyn_symtab.dir/symtab/symtab.cpp.o.d"
  "librvdyn_symtab.a"
  "librvdyn_symtab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_symtab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
