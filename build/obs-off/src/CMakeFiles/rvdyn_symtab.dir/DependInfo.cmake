
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symtab/riscv_attrs.cpp" "src/CMakeFiles/rvdyn_symtab.dir/symtab/riscv_attrs.cpp.o" "gcc" "src/CMakeFiles/rvdyn_symtab.dir/symtab/riscv_attrs.cpp.o.d"
  "/root/repo/src/symtab/symtab.cpp" "src/CMakeFiles/rvdyn_symtab.dir/symtab/symtab.cpp.o" "gcc" "src/CMakeFiles/rvdyn_symtab.dir/symtab/symtab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
