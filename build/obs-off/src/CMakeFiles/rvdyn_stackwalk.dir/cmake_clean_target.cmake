file(REMOVE_RECURSE
  "librvdyn_stackwalk.a"
)
