# Empty dependencies file for rvdyn_stackwalk.
# This may be replaced when dependencies are built.
