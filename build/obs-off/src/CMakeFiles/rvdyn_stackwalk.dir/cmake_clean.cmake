file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_stackwalk.dir/stackwalk/stackwalker.cpp.o"
  "CMakeFiles/rvdyn_stackwalk.dir/stackwalk/stackwalker.cpp.o.d"
  "librvdyn_stackwalk.a"
  "librvdyn_stackwalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_stackwalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
