file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_patch.dir/patch/editor.cpp.o"
  "CMakeFiles/rvdyn_patch.dir/patch/editor.cpp.o.d"
  "CMakeFiles/rvdyn_patch.dir/patch/point.cpp.o"
  "CMakeFiles/rvdyn_patch.dir/patch/point.cpp.o.d"
  "librvdyn_patch.a"
  "librvdyn_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
