# Empty dependencies file for rvdyn_patch.
# This may be replaced when dependencies are built.
