file(REMOVE_RECURSE
  "librvdyn_patch.a"
)
