file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_isa.dir/isa/compress.cpp.o"
  "CMakeFiles/rvdyn_isa.dir/isa/compress.cpp.o.d"
  "CMakeFiles/rvdyn_isa.dir/isa/decode_table.cpp.o"
  "CMakeFiles/rvdyn_isa.dir/isa/decode_table.cpp.o.d"
  "CMakeFiles/rvdyn_isa.dir/isa/decoder.cpp.o"
  "CMakeFiles/rvdyn_isa.dir/isa/decoder.cpp.o.d"
  "CMakeFiles/rvdyn_isa.dir/isa/decoder_c.cpp.o"
  "CMakeFiles/rvdyn_isa.dir/isa/decoder_c.cpp.o.d"
  "CMakeFiles/rvdyn_isa.dir/isa/encoder.cpp.o"
  "CMakeFiles/rvdyn_isa.dir/isa/encoder.cpp.o.d"
  "CMakeFiles/rvdyn_isa.dir/isa/extensions.cpp.o"
  "CMakeFiles/rvdyn_isa.dir/isa/extensions.cpp.o.d"
  "CMakeFiles/rvdyn_isa.dir/isa/imm_builder.cpp.o"
  "CMakeFiles/rvdyn_isa.dir/isa/imm_builder.cpp.o.d"
  "CMakeFiles/rvdyn_isa.dir/isa/instruction.cpp.o"
  "CMakeFiles/rvdyn_isa.dir/isa/instruction.cpp.o.d"
  "CMakeFiles/rvdyn_isa.dir/isa/registers.cpp.o"
  "CMakeFiles/rvdyn_isa.dir/isa/registers.cpp.o.d"
  "librvdyn_isa.a"
  "librvdyn_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
