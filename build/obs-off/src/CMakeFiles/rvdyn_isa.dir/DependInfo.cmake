
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/compress.cpp" "src/CMakeFiles/rvdyn_isa.dir/isa/compress.cpp.o" "gcc" "src/CMakeFiles/rvdyn_isa.dir/isa/compress.cpp.o.d"
  "/root/repo/src/isa/decode_table.cpp" "src/CMakeFiles/rvdyn_isa.dir/isa/decode_table.cpp.o" "gcc" "src/CMakeFiles/rvdyn_isa.dir/isa/decode_table.cpp.o.d"
  "/root/repo/src/isa/decoder.cpp" "src/CMakeFiles/rvdyn_isa.dir/isa/decoder.cpp.o" "gcc" "src/CMakeFiles/rvdyn_isa.dir/isa/decoder.cpp.o.d"
  "/root/repo/src/isa/decoder_c.cpp" "src/CMakeFiles/rvdyn_isa.dir/isa/decoder_c.cpp.o" "gcc" "src/CMakeFiles/rvdyn_isa.dir/isa/decoder_c.cpp.o.d"
  "/root/repo/src/isa/encoder.cpp" "src/CMakeFiles/rvdyn_isa.dir/isa/encoder.cpp.o" "gcc" "src/CMakeFiles/rvdyn_isa.dir/isa/encoder.cpp.o.d"
  "/root/repo/src/isa/extensions.cpp" "src/CMakeFiles/rvdyn_isa.dir/isa/extensions.cpp.o" "gcc" "src/CMakeFiles/rvdyn_isa.dir/isa/extensions.cpp.o.d"
  "/root/repo/src/isa/imm_builder.cpp" "src/CMakeFiles/rvdyn_isa.dir/isa/imm_builder.cpp.o" "gcc" "src/CMakeFiles/rvdyn_isa.dir/isa/imm_builder.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "src/CMakeFiles/rvdyn_isa.dir/isa/instruction.cpp.o" "gcc" "src/CMakeFiles/rvdyn_isa.dir/isa/instruction.cpp.o.d"
  "/root/repo/src/isa/registers.cpp" "src/CMakeFiles/rvdyn_isa.dir/isa/registers.cpp.o" "gcc" "src/CMakeFiles/rvdyn_isa.dir/isa/registers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
