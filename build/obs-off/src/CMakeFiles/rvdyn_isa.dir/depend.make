# Empty dependencies file for rvdyn_isa.
# This may be replaced when dependencies are built.
