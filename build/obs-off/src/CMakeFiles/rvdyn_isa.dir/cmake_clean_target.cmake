file(REMOVE_RECURSE
  "librvdyn_isa.a"
)
