file(REMOVE_RECURSE
  "librvdyn_parse.a"
)
