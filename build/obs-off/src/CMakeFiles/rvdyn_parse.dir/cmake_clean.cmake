file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_parse.dir/parse/callgraph.cpp.o"
  "CMakeFiles/rvdyn_parse.dir/parse/callgraph.cpp.o.d"
  "CMakeFiles/rvdyn_parse.dir/parse/classify.cpp.o"
  "CMakeFiles/rvdyn_parse.dir/parse/classify.cpp.o.d"
  "CMakeFiles/rvdyn_parse.dir/parse/dot.cpp.o"
  "CMakeFiles/rvdyn_parse.dir/parse/dot.cpp.o.d"
  "CMakeFiles/rvdyn_parse.dir/parse/loops.cpp.o"
  "CMakeFiles/rvdyn_parse.dir/parse/loops.cpp.o.d"
  "CMakeFiles/rvdyn_parse.dir/parse/parser.cpp.o"
  "CMakeFiles/rvdyn_parse.dir/parse/parser.cpp.o.d"
  "librvdyn_parse.a"
  "librvdyn_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
