# Empty dependencies file for rvdyn_parse.
# This may be replaced when dependencies are built.
