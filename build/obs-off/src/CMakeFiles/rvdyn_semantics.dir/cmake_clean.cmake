file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_semantics.dir/semantics/eval.cpp.o"
  "CMakeFiles/rvdyn_semantics.dir/semantics/eval.cpp.o.d"
  "CMakeFiles/rvdyn_semantics.dir/semantics/pipeline.cpp.o"
  "CMakeFiles/rvdyn_semantics.dir/semantics/pipeline.cpp.o.d"
  "CMakeFiles/rvdyn_semantics.dir/semantics/spec.cpp.o"
  "CMakeFiles/rvdyn_semantics.dir/semantics/spec.cpp.o.d"
  "librvdyn_semantics.a"
  "librvdyn_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
