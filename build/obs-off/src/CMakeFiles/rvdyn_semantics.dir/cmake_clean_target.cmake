file(REMOVE_RECURSE
  "librvdyn_semantics.a"
)
