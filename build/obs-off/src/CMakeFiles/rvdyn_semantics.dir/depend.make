# Empty dependencies file for rvdyn_semantics.
# This may be replaced when dependencies are built.
