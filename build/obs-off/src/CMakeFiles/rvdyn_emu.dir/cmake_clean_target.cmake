file(REMOVE_RECURSE
  "librvdyn_emu.a"
)
