# Empty dependencies file for rvdyn_emu.
# This may be replaced when dependencies are built.
