file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_emu.dir/emu/machine.cpp.o"
  "CMakeFiles/rvdyn_emu.dir/emu/machine.cpp.o.d"
  "librvdyn_emu.a"
  "librvdyn_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
