file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_workloads.dir/workloads/workloads.cpp.o"
  "CMakeFiles/rvdyn_workloads.dir/workloads/workloads.cpp.o.d"
  "librvdyn_workloads.a"
  "librvdyn_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
