file(REMOVE_RECURSE
  "librvdyn_workloads.a"
)
