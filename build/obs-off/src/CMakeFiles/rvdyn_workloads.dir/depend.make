# Empty dependencies file for rvdyn_workloads.
# This may be replaced when dependencies are built.
