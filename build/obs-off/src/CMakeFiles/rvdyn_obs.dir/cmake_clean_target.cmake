file(REMOVE_RECURSE
  "librvdyn_obs.a"
)
