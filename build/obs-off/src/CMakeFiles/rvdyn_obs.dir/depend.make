# Empty dependencies file for rvdyn_obs.
# This may be replaced when dependencies are built.
