file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_obs.dir/obs/profiler.cpp.o"
  "CMakeFiles/rvdyn_obs.dir/obs/profiler.cpp.o.d"
  "librvdyn_obs.a"
  "librvdyn_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
