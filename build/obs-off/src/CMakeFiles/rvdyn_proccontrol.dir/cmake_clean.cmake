file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_proccontrol.dir/proccontrol/process.cpp.o"
  "CMakeFiles/rvdyn_proccontrol.dir/proccontrol/process.cpp.o.d"
  "librvdyn_proccontrol.a"
  "librvdyn_proccontrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_proccontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
