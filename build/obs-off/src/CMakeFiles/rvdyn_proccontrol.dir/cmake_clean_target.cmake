file(REMOVE_RECURSE
  "librvdyn_proccontrol.a"
)
