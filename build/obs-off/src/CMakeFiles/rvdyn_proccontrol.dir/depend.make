# Empty dependencies file for rvdyn_proccontrol.
# This may be replaced when dependencies are built.
