# Empty dependencies file for rvdyn_assembler.
# This may be replaced when dependencies are built.
