file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_assembler.dir/assembler/assembler.cpp.o"
  "CMakeFiles/rvdyn_assembler.dir/assembler/assembler.cpp.o.d"
  "librvdyn_assembler.a"
  "librvdyn_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
