file(REMOVE_RECURSE
  "librvdyn_assembler.a"
)
