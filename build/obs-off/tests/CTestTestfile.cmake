# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/obs-off/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/obs-off/tests/test_asm_features[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_assembler_emu[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_decode_fastpath[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_dot[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_emu[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_emu_cache[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_extensions_e2e[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_fuzz_decode[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_golden_encodings[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_integration[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_interproc[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_isa[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_obs[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_obs_pipeline[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_obs_profiler[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_parse[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_patch[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_patch_advanced[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_proccontrol[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_stackwalk[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_symtab[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_watchpoints[1]_include.cmake")
include("/root/repo/build/obs-off/tests/test_workloads[1]_include.cmake")
