file(REMOVE_RECURSE
  "CMakeFiles/test_obs_profiler.dir/test_obs_profiler.cpp.o"
  "CMakeFiles/test_obs_profiler.dir/test_obs_profiler.cpp.o.d"
  "test_obs_profiler"
  "test_obs_profiler.pdb"
  "test_obs_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
