# Empty dependencies file for test_obs_profiler.
# This may be replaced when dependencies are built.
