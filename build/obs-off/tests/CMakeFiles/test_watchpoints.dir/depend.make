# Empty dependencies file for test_watchpoints.
# This may be replaced when dependencies are built.
