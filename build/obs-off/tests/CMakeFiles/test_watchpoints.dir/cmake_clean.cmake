file(REMOVE_RECURSE
  "CMakeFiles/test_watchpoints.dir/test_watchpoints.cpp.o"
  "CMakeFiles/test_watchpoints.dir/test_watchpoints.cpp.o.d"
  "test_watchpoints"
  "test_watchpoints.pdb"
  "test_watchpoints[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_watchpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
