file(REMOVE_RECURSE
  "CMakeFiles/test_assembler_emu.dir/test_assembler_emu.cpp.o"
  "CMakeFiles/test_assembler_emu.dir/test_assembler_emu.cpp.o.d"
  "test_assembler_emu"
  "test_assembler_emu.pdb"
  "test_assembler_emu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assembler_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
