# Empty compiler generated dependencies file for test_assembler_emu.
# This may be replaced when dependencies are built.
