file(REMOVE_RECURSE
  "CMakeFiles/test_patch_advanced.dir/test_patch_advanced.cpp.o"
  "CMakeFiles/test_patch_advanced.dir/test_patch_advanced.cpp.o.d"
  "test_patch_advanced"
  "test_patch_advanced.pdb"
  "test_patch_advanced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patch_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
