# Empty compiler generated dependencies file for test_patch_advanced.
# This may be replaced when dependencies are built.
