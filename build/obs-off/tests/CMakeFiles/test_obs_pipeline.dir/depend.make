# Empty dependencies file for test_obs_pipeline.
# This may be replaced when dependencies are built.
