file(REMOVE_RECURSE
  "CMakeFiles/test_obs_pipeline.dir/test_obs_pipeline.cpp.o"
  "CMakeFiles/test_obs_pipeline.dir/test_obs_pipeline.cpp.o.d"
  "test_obs_pipeline"
  "test_obs_pipeline.pdb"
  "test_obs_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
