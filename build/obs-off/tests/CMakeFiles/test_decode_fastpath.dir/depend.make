# Empty dependencies file for test_decode_fastpath.
# This may be replaced when dependencies are built.
