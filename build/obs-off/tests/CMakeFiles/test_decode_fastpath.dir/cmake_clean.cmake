file(REMOVE_RECURSE
  "CMakeFiles/test_decode_fastpath.dir/test_decode_fastpath.cpp.o"
  "CMakeFiles/test_decode_fastpath.dir/test_decode_fastpath.cpp.o.d"
  "test_decode_fastpath"
  "test_decode_fastpath.pdb"
  "test_decode_fastpath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decode_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
