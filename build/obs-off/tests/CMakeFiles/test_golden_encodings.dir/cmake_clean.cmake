file(REMOVE_RECURSE
  "CMakeFiles/test_golden_encodings.dir/test_golden_encodings.cpp.o"
  "CMakeFiles/test_golden_encodings.dir/test_golden_encodings.cpp.o.d"
  "test_golden_encodings"
  "test_golden_encodings.pdb"
  "test_golden_encodings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
