# Empty dependencies file for test_golden_encodings.
# This may be replaced when dependencies are built.
