# Empty dependencies file for test_proccontrol.
# This may be replaced when dependencies are built.
