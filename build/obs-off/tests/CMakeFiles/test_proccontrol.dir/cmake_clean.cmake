file(REMOVE_RECURSE
  "CMakeFiles/test_proccontrol.dir/test_proccontrol.cpp.o"
  "CMakeFiles/test_proccontrol.dir/test_proccontrol.cpp.o.d"
  "test_proccontrol"
  "test_proccontrol.pdb"
  "test_proccontrol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proccontrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
