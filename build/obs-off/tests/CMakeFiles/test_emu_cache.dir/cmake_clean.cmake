file(REMOVE_RECURSE
  "CMakeFiles/test_emu_cache.dir/test_emu_cache.cpp.o"
  "CMakeFiles/test_emu_cache.dir/test_emu_cache.cpp.o.d"
  "test_emu_cache"
  "test_emu_cache.pdb"
  "test_emu_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emu_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
