# Empty dependencies file for test_emu_cache.
# This may be replaced when dependencies are built.
