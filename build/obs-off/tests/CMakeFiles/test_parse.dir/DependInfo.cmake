
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parse.cpp" "tests/CMakeFiles/test_parse.dir/test_parse.cpp.o" "gcc" "tests/CMakeFiles/test_parse.dir/test_parse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_assembler.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_stackwalk.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_proccontrol.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_workloads.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_obs.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_emu.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_patch.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_codegen.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_parse.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_semantics.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_isa.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_symtab.dir/DependInfo.cmake"
  "/root/repo/build/obs-off/src/CMakeFiles/rvdyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
