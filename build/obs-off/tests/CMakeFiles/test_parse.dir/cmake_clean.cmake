file(REMOVE_RECURSE
  "CMakeFiles/test_parse.dir/test_parse.cpp.o"
  "CMakeFiles/test_parse.dir/test_parse.cpp.o.d"
  "test_parse"
  "test_parse.pdb"
  "test_parse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
