# Empty dependencies file for test_parse.
# This may be replaced when dependencies are built.
