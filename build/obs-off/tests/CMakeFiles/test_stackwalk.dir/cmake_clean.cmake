file(REMOVE_RECURSE
  "CMakeFiles/test_stackwalk.dir/test_stackwalk.cpp.o"
  "CMakeFiles/test_stackwalk.dir/test_stackwalk.cpp.o.d"
  "test_stackwalk"
  "test_stackwalk.pdb"
  "test_stackwalk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stackwalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
