# Empty dependencies file for test_stackwalk.
# This may be replaced when dependencies are built.
