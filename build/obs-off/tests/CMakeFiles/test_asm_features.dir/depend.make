# Empty dependencies file for test_asm_features.
# This may be replaced when dependencies are built.
