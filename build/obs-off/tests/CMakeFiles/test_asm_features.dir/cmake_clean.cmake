file(REMOVE_RECURSE
  "CMakeFiles/test_asm_features.dir/test_asm_features.cpp.o"
  "CMakeFiles/test_asm_features.dir/test_asm_features.cpp.o.d"
  "test_asm_features"
  "test_asm_features.pdb"
  "test_asm_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
