# Empty compiler generated dependencies file for bench_ablate_deadreg.
# This may be replaced when dependencies are built.
