file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_deadreg.dir/bench_ablate_deadreg.cpp.o"
  "CMakeFiles/bench_ablate_deadreg.dir/bench_ablate_deadreg.cpp.o.d"
  "bench_ablate_deadreg"
  "bench_ablate_deadreg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_deadreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
