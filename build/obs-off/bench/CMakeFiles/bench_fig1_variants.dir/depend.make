# Empty dependencies file for bench_fig1_variants.
# This may be replaced when dependencies are built.
