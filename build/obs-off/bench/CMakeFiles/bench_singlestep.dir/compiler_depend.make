# Empty compiler generated dependencies file for bench_singlestep.
# This may be replaced when dependencies are built.
