file(REMOVE_RECURSE
  "CMakeFiles/bench_singlestep.dir/bench_singlestep.cpp.o"
  "CMakeFiles/bench_singlestep.dir/bench_singlestep.cpp.o.d"
  "bench_singlestep"
  "bench_singlestep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_singlestep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
