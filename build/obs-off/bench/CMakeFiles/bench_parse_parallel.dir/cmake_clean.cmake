file(REMOVE_RECURSE
  "CMakeFiles/bench_parse_parallel.dir/bench_parse_parallel.cpp.o"
  "CMakeFiles/bench_parse_parallel.dir/bench_parse_parallel.cpp.o.d"
  "bench_parse_parallel"
  "bench_parse_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parse_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
