# Empty dependencies file for bench_parse_parallel.
# This may be replaced when dependencies are built.
