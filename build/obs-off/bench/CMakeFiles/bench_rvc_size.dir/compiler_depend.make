# Empty compiler generated dependencies file for bench_rvc_size.
# This may be replaced when dependencies are built.
