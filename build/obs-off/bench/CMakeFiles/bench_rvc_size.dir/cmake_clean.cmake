file(REMOVE_RECURSE
  "CMakeFiles/bench_rvc_size.dir/bench_rvc_size.cpp.o"
  "CMakeFiles/bench_rvc_size.dir/bench_rvc_size.cpp.o.d"
  "bench_rvc_size"
  "bench_rvc_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rvc_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
