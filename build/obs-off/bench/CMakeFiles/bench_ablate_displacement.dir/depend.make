# Empty dependencies file for bench_ablate_displacement.
# This may be replaced when dependencies are built.
