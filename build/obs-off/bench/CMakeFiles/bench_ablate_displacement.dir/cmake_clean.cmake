file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_displacement.dir/bench_ablate_displacement.cpp.o"
  "CMakeFiles/bench_ablate_displacement.dir/bench_ablate_displacement.cpp.o.d"
  "bench_ablate_displacement"
  "bench_ablate_displacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_displacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
