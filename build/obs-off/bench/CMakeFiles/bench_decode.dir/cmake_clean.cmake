file(REMOVE_RECURSE
  "CMakeFiles/bench_decode.dir/bench_decode.cpp.o"
  "CMakeFiles/bench_decode.dir/bench_decode.cpp.o.d"
  "bench_decode"
  "bench_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
