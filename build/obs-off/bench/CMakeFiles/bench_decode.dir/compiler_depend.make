# Empty compiler generated dependencies file for bench_decode.
# This may be replaced when dependencies are built.
