# Empty compiler generated dependencies file for bench_fig2_components.
# This may be replaced when dependencies are built.
