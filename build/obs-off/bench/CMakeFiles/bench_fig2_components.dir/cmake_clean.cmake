file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_components.dir/bench_fig2_components.cpp.o"
  "CMakeFiles/bench_fig2_components.dir/bench_fig2_components.cpp.o.d"
  "bench_fig2_components"
  "bench_fig2_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
