file(REMOVE_RECURSE
  "CMakeFiles/bb_coverage.dir/bb_coverage.cpp.o"
  "CMakeFiles/bb_coverage.dir/bb_coverage.cpp.o.d"
  "bb_coverage"
  "bb_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bb_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
