# Empty compiler generated dependencies file for bb_coverage.
# This may be replaced when dependencies are built.
