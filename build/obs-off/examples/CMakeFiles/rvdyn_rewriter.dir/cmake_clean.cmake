file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_rewriter.dir/rvdyn_rewriter.cpp.o"
  "CMakeFiles/rvdyn_rewriter.dir/rvdyn_rewriter.cpp.o.d"
  "rvdyn_rewriter"
  "rvdyn_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
