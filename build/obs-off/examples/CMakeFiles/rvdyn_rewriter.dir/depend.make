# Empty dependencies file for rvdyn_rewriter.
# This may be replaced when dependencies are built.
