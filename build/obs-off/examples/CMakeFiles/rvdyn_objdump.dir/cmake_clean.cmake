file(REMOVE_RECURSE
  "CMakeFiles/rvdyn_objdump.dir/rvdyn_objdump.cpp.o"
  "CMakeFiles/rvdyn_objdump.dir/rvdyn_objdump.cpp.o.d"
  "rvdyn_objdump"
  "rvdyn_objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rvdyn_objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
