# Empty dependencies file for rvdyn_objdump.
# This may be replaced when dependencies are built.
