# Empty compiler generated dependencies file for profile_blocks.
# This may be replaced when dependencies are built.
