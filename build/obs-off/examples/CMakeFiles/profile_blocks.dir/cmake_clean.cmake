file(REMOVE_RECURSE
  "CMakeFiles/profile_blocks.dir/profile_blocks.cpp.o"
  "CMakeFiles/profile_blocks.dir/profile_blocks.cpp.o.d"
  "profile_blocks"
  "profile_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
