# Empty compiler generated dependencies file for function_tracer.
# This may be replaced when dependencies are built.
