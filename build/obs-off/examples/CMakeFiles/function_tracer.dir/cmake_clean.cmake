file(REMOVE_RECURSE
  "CMakeFiles/function_tracer.dir/function_tracer.cpp.o"
  "CMakeFiles/function_tracer.dir/function_tracer.cpp.o.d"
  "function_tracer"
  "function_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
