file(REMOVE_RECURSE
  "CMakeFiles/memtrace.dir/memtrace.cpp.o"
  "CMakeFiles/memtrace.dir/memtrace.cpp.o.d"
  "memtrace"
  "memtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
