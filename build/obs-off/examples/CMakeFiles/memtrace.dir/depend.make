# Empty dependencies file for memtrace.
# This may be replaced when dependencies are built.
