file(REMOVE_RECURSE
  "CMakeFiles/value_profiler.dir/value_profiler.cpp.o"
  "CMakeFiles/value_profiler.dir/value_profiler.cpp.o.d"
  "value_profiler"
  "value_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
