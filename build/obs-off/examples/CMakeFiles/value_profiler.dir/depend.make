# Empty dependencies file for value_profiler.
# This may be replaced when dependencies are built.
