file(REMOVE_RECURSE
  "CMakeFiles/stack_sampler.dir/stack_sampler.cpp.o"
  "CMakeFiles/stack_sampler.dir/stack_sampler.cpp.o.d"
  "stack_sampler"
  "stack_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
