# Empty dependencies file for stack_sampler.
# This may be replaced when dependencies are built.
