file(REMOVE_RECURSE
  "CMakeFiles/cache_sim.dir/cache_sim.cpp.o"
  "CMakeFiles/cache_sim.dir/cache_sim.cpp.o.d"
  "cache_sim"
  "cache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
