# Empty dependencies file for cache_sim.
# This may be replaced when dependencies are built.
