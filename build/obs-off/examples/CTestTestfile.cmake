# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/obs-off/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_bb_coverage "/root/repo/build/obs-off/examples/bb_coverage")
set_tests_properties(example_bb_coverage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cache_sim "/root/repo/build/obs-off/examples/cache_sim")
set_tests_properties(example_cache_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_function_tracer "/root/repo/build/obs-off/examples/function_tracer")
set_tests_properties(example_function_tracer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memtrace "/root/repo/build/obs-off/examples/memtrace")
set_tests_properties(example_memtrace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_blocks "/root/repo/build/obs-off/examples/profile_blocks")
set_tests_properties(example_profile_blocks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/obs-off/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rvdyn_objdump "/root/repo/build/obs-off/examples/rvdyn_objdump")
set_tests_properties(example_rvdyn_objdump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rvdyn_rewriter "/root/repo/build/obs-off/examples/rvdyn_rewriter")
set_tests_properties(example_rvdyn_rewriter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stack_sampler "/root/repo/build/obs-off/examples/stack_sampler")
set_tests_properties(example_stack_sampler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_value_profiler "/root/repo/build/obs-off/examples/value_profiler")
set_tests_properties(example_value_profiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
