# Empty compiler generated dependencies file for rvdyn_isa.
# This may be replaced when dependencies are built.
